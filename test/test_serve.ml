(* The serving stack: wire-protocol totality, deterministic admission
   control, and a live daemon on a temp Unix socket.

   The protocol promise mirrors the artefact loaders (test_loader_fuzz):
   any byte string — truncated, bit-flipped, oversized, pure garbage —
   decodes to a typed [Ax_arith.Load_error.t], never an unchecked
   exception.  On a live connection a CRC mismatch is recoverable (the
   length prefix already walked the stream past the damage) while a
   framing desync closes that connection — and neither brings the
   daemon down. *)

module Protocol = Ax_serve.Protocol
module Admission = Ax_serve.Admission
module Server = Ax_serve.Server
module Store = Ax_serve.Store
module Client = Ax_serve.Client
module Load_error = Ax_arith.Load_error
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape

let seed = 0x5EE7

(* ------------------------------------------------------------------ *)
(* Wire protocol: round-trips                                          *)
(* ------------------------------------------------------------------ *)

let mk_tensor ~n ~h ~w ~c ~vseed =
  let t = Tensor.create (Shape.make ~n ~h ~w ~c) in
  let total = n * h * w * c in
  for i = 0 to total - 1 do
    Tensor.set_flat t i (sin (float_of_int (i + vseed)))
  done;
  t

let request_gen =
  QCheck.Gen.(
    oneof
      [
        return Protocol.Ping;
        return Protocol.List_models;
        return Protocol.Metrics;
        return Protocol.Shutdown;
        ( int_range 1 3 >>= fun n ->
          int_range 1 4 >>= fun h ->
          int_range 1 4 >>= fun w ->
          int_range 1 3 >>= fun c ->
          int_range 0 1000 >>= fun vseed ->
          int_range 0 100_000 >>= fun id ->
          oneof [ return None; (int_range 0 60_000 >|= Option.some) ]
          >>= fun deadline_ms ->
          string_size ~gen:(char_range 'a' 'z') (int_range 1 12)
          >|= fun model ->
          Protocol.Infer
            { id; model; deadline_ms; input = mk_tensor ~n ~h ~w ~c ~vseed } );
      ])

let request_arb = QCheck.make ~print:(fun _ -> "<request>") request_gen

let response_gen =
  QCheck.Gen.(
    oneof
      [
        return Protocol.Pong;
        return Protocol.Shutdown_ack;
        ( list_size (int_range 0 5)
            (pair
               (string_size ~gen:(char_range 'a' 'z') (int_range 1 10))
               (oneof
                  [
                    return `Ready;
                    ( string_size ~gen:(char_range 'a' 'z') (int_range 0 20)
                    >|= fun r -> `Unavailable r );
                  ]))
        >|= fun models -> Protocol.Models models );
        ( int_range 0 100_000 >>= fun id ->
          list_size (int_range 0 8) (int_range 0 9) >|= fun classes ->
          Protocol.Predictions { id; classes = Array.of_list classes } );
        (string_size (int_range 0 200) >|= fun s -> Protocol.Metrics_dump s);
        ( oneof [ return None; (int_range 0 1000 >|= Option.some) ]
        >>= fun id ->
          oneofl
            Protocol.
              [
                Bad_request; Unknown_model; Model_unavailable; Overloaded;
                Deadline_exceeded; Internal; Shutting_down;
              ]
          >>= fun code ->
          int_range 0 5000 >>= fun retry_after_ms ->
          string_size (int_range 0 60) >|= fun message ->
          Protocol.Error { id; code; retry_after_ms; message } );
      ])

let response_arb = QCheck.make ~print:(fun _ -> "<response>") response_gen

let roundtrip_request =
  QCheck.Test.make ~count:300 ~name:"request survives encode/frame/decode"
    request_arb (fun req ->
      let framed = Protocol.frame (Protocol.encode_request req) in
      match Protocol.parse_frame framed with
      | Error e -> QCheck.Test.fail_reportf "frame rejected: %s" (Load_error.to_string e)
      | Ok payload -> (
        match Protocol.decode_request payload with
        | Error e ->
          QCheck.Test.fail_reportf "decode failed: %s" (Load_error.to_string e)
        | Ok req' -> Protocol.request_equal req req'))

let roundtrip_response =
  QCheck.Test.make ~count:300 ~name:"response survives encode/frame/decode"
    response_arb (fun resp ->
      let framed = Protocol.frame (Protocol.encode_response resp) in
      match Protocol.parse_frame framed with
      | Error _ -> false
      | Ok payload -> (
        match Protocol.decode_response payload with
        | Error _ -> false
        | Ok resp' -> Protocol.response_equal resp resp'))

(* ------------------------------------------------------------------ *)
(* Wire protocol: corruption fuzz                                      *)
(* ------------------------------------------------------------------ *)

let pristine_frame =
  lazy
    (Protocol.frame
       (Protocol.encode_request
          (Protocol.Infer
             {
               id = 7;
               model = "resnet8";
               deadline_ms = Some 250;
               input = mk_tensor ~n:1 ~h:4 ~w:4 ~c:3 ~vseed:9;
             })))

let total_or_fail ~what f =
  match f () with
  | Ok _ | Error _ -> true
  | exception e ->
    Alcotest.failf "%s: unchecked exception %s" what (Printexc.to_string e)

let frame_then_decode bytes =
  match Protocol.parse_frame bytes with
  | Error _ as e -> e
  | Ok payload -> Protocol.decode_request payload

let truncation_fuzz =
  QCheck.Test.make ~count:200 ~name:"truncated frame is a typed error"
    QCheck.(int_range 0 (Bytes.length (Lazy.force pristine_frame) - 1))
    (fun len ->
      let cut = Bytes.sub (Lazy.force pristine_frame) 0 len in
      total_or_fail ~what:"truncation" (fun () -> frame_then_decode cut)
      && match frame_then_decode cut with Error _ -> true | Ok _ -> false)

let bitflip_fuzz =
  QCheck.Test.make ~count:300 ~name:"any single bit flip is detected"
    QCheck.(
      pair
        (int_range 0 (Bytes.length (Lazy.force pristine_frame) - 1))
        (int_range 0 7))
    (fun (pos, bit) ->
      let b = Bytes.copy (Lazy.force pristine_frame) in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      total_or_fail ~what:"bitflip" (fun () -> frame_then_decode b)
      && match frame_then_decode b with Error _ -> true | Ok _ -> false)

let garbage_fuzz =
  QCheck.Test.make ~count:300 ~name:"garbage bytes are a typed error"
    QCheck.(string_of_size (Gen.int_range 0 2048))
    (fun s ->
      let b = Bytes.of_string s in
      total_or_fail ~what:"garbage" (fun () -> frame_then_decode b)
      && match frame_then_decode b with Error _ -> true | Ok _ -> false)

(* Random payloads behind a well-formed frame: correct magic, length and
   CRC, garbage inside — exercises the request decoder past the framing
   gates.  (Empty payloads are rejected as having no tag.) *)
let framed_garbage_fuzz =
  QCheck.Test.make ~count:300
    ~name:"well-framed garbage payload is a typed decode error"
    QCheck.(string_of_size (Gen.int_range 1 2048))
    (fun s ->
      let framed = Protocol.frame (Bytes.of_string s) in
      match Protocol.parse_frame framed with
      | Error _ -> false (* we framed it correctly; framing must pass *)
      | Ok payload ->
        total_or_fail ~what:"framed garbage" (fun () ->
            Protocol.decode_request payload)
        &&
        (* a random payload that decodes must at least have had a valid
           tag byte; reject only exceptions and silent success on junk *)
        (match Protocol.decode_request payload with
        | Error _ -> true
        | Ok _ -> String.length s > 0))

let oversized_rejected () =
  (* a header announcing more than max_payload_bytes must be refused
     without allocating the announced buffer *)
  let b = Bytes.create Protocol.header_bytes in
  Bytes.blit_string Protocol.magic 0 b 0 4;
  Ax_arith.Checksum.write_u32_le b ~pos:4 (Protocol.max_payload_bytes + 1);
  (match Protocol.parse_frame b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  match
    Protocol.parse_frame
      (Protocol.frame (Bytes.make 8 'x'))
  with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "well-formed frame rejected: %s" (Load_error.to_string e)

let recoverable_classification () =
  let bc =
    Load_error.Bad_checksum { what = "AXS1 frame"; expected = 1; actual = 2 }
  in
  Alcotest.(check bool) "checksum is recoverable" true (Protocol.recoverable bc);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Load_error.to_string e ^ " loses sync")
        false (Protocol.recoverable e))
    [
      Load_error.Bad_magic
        { what = "AXS1 frame"; expected = "AXS1"; actual = "junk" };
      Load_error.Truncated { what = "AXS1 frame"; needed = 8; available = 2 };
      Load_error.Malformed { what = "AXS1 frame"; detail = "oversized" };
    ]

(* ------------------------------------------------------------------ *)
(* Admission control: deterministic, manual clock                      *)
(* ------------------------------------------------------------------ *)

let job ?(model = "m") ?deadline ~clock ~outcomes id =
  {
    Admission.model;
    input = mk_tensor ~n:1 ~h:1 ~w:1 ~c:1 ~vseed:id;
    images = 1;
    enqueued = !clock;
    deadline;
    deliver = (fun o -> outcomes := (id, o) :: !outcomes);
  }

let overload_is_bounded () =
  let clock = ref 0. in
  let adm =
    Admission.create ~now:(fun () -> !clock) ~retry_after_ms:17 ~capacity:2
      ~max_batch:8 ()
  in
  let outcomes = ref [] in
  Alcotest.(check bool)
    "first accepted" true
    (Admission.submit adm (job ~clock ~outcomes 0) = Ok ());
  Alcotest.(check bool)
    "second accepted" true
    (Admission.submit adm (job ~clock ~outcomes 1) = Ok ());
  (match Admission.submit adm (job ~clock ~outcomes 2) with
  | Error (Admission.Queue_full { retry_after_ms }) ->
    Alcotest.(check int) "retry hint" 17 retry_after_ms
  | Ok () -> Alcotest.fail "queue exceeded its bound"
  | Error Admission.Closed -> Alcotest.fail "queue reported closed");
  Alcotest.(check int) "depth bounded" 2 (Admission.depth adm);
  let st = Admission.stats adm in
  Alcotest.(check int) "max_depth bounded" 2 st.Admission.max_depth;
  Alcotest.(check int) "one rejection" 1 st.Admission.rejected;
  (* rejected jobs are never delivered — memory for them is the
     caller's typed error response, nothing queued *)
  Alcotest.(check int) "no deliveries yet" 0 (List.length !outcomes);
  Admission.close adm;
  (match Admission.submit adm (job ~clock ~outcomes 3) with
  | Error Admission.Closed -> ()
  | _ -> Alcotest.fail "closed queue accepted work");
  Admission.drain adm;
  let cancelled =
    List.for_all (fun (_, o) -> o = Admission.Cancelled) !outcomes
  in
  Alcotest.(check bool) "drain cancels queued jobs" true cancelled;
  Alcotest.(check int) "both queued jobs cancelled" 2 (List.length !outcomes)

let expired_never_scheduled () =
  let clock = ref 100. in
  let adm =
    Admission.create ~now:(fun () -> !clock) ~capacity:8 ~max_batch:8 ()
  in
  let outcomes = ref [] in
  ignore (Admission.submit adm (job ~clock ~outcomes ~deadline:100.5 0));
  ignore (Admission.submit adm (job ~clock ~outcomes 1));
  clock := 101.;
  (match Admission.form_batch adm with
  | `Batch (model, jobs) ->
    Alcotest.(check string) "batch model" "m" model;
    Alcotest.(check int) "only the live job scheduled" 1 (List.length jobs);
    List.iter (fun j -> j.Admission.deliver (Admission.Done [| 0 |])) jobs
  | `Empty -> Alcotest.fail "live job not scheduled");
  (match List.assoc 0 !outcomes with
  | Admission.Expired -> ()
  | _ -> Alcotest.fail "expired job was not answered Expired");
  (match List.assoc 1 !outcomes with
  | Admission.Done _ -> ()
  | _ -> Alcotest.fail "live job lost");
  let st = Admission.stats adm in
  Alcotest.(check int) "expired counted" 1 st.Admission.expired;
  Alcotest.(check int) "one batch" 1 st.Admission.batches;
  Admission.close adm

let batches_are_per_model_fifo () =
  let clock = ref 0. in
  let adm =
    Admission.create ~now:(fun () -> !clock) ~capacity:8 ~max_batch:2 ()
  in
  let outcomes = ref [] in
  ignore (Admission.submit adm (job ~model:"a" ~clock ~outcomes 0));
  ignore (Admission.submit adm (job ~model:"b" ~clock ~outcomes 1));
  ignore (Admission.submit adm (job ~model:"a" ~clock ~outcomes 2));
  ignore (Admission.submit adm (job ~model:"a" ~clock ~outcomes 3));
  let pop () =
    match Admission.form_batch adm with
    | `Batch (model, jobs) ->
      List.iter (fun j -> j.Admission.deliver (Admission.Done [| 0 |])) jobs;
      (model, List.length jobs)
    | `Empty -> ("empty", 0)
  in
  (* head is model a: coalesce a-jobs up to max_batch, b keeps its seat *)
  Alcotest.(check (pair string int)) "first batch" ("a", 2) (pop ());
  Alcotest.(check (pair string int)) "second batch" ("b", 1) (pop ());
  Alcotest.(check (pair string int)) "third batch" ("a", 1) (pop ());
  Alcotest.(check int) "all delivered" 4 (List.length !outcomes);
  Admission.close adm

(* ------------------------------------------------------------------ *)
(* Live daemon on a temp Unix socket                                   *)
(* ------------------------------------------------------------------ *)

let temp_socket () =
  let path = Filename.temp_file "tfapprox_test" ".sock" in
  Sys.remove path;
  path

let with_daemon ?(linger = 0.002) ?(max_connections = 256)
    ?(idle_timeout = 300.) f =
  let store =
    Store.load ~domains:1 [ Store.parse_spec "lenet=lenet+mul8u_trunc8" ]
  in
  let address = Server.Unix_sock (temp_socket ()) in
  let server =
    Server.start
      {
        (Server.default_config ~store ~address ()) with
        Server.queue_capacity = 8;
        max_batch = 4;
        linger;
        max_connections;
        idle_timeout;
      }
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () ->
      f ~server ~store ~address)

let mnist_image = lazy (Ax_data.Mnist.generate ~seed:3 ~n:1 ()).Ax_data.Mnist.images

let daemon_ping_and_infer () =
  with_daemon (fun ~server:_ ~store ~address ->
      let c = Client.connect address in
      (match Client.ping c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ping: %s" (Client.error_to_string e));
      let data = Lazy.force mnist_image in
      let graph =
        match Store.find store "lenet" with
        | Some { Store.status = Store.Ready r; _ } -> r.Store.graph
        | _ -> Alcotest.fail "lenet not ready"
      in
      let expected =
        Tfapprox.Emulator.predictions ~verify:false ~domains:1 graph
          ~backend:Tfapprox.Emulator.Cpu_gemm data
      in
      (match Client.infer c ~model:"lenet" data with
      | Ok classes ->
        Alcotest.(check (array int))
          "bit-identical to one-shot emulator" expected classes
      | Error e -> Alcotest.failf "infer: %s" (Client.error_to_string e));
      (match Client.infer c ~model:"nope" data with
      | Error (Client.Refused { code = Protocol.Unknown_model; _ }) -> ()
      | Ok _ -> Alcotest.fail "unknown model accepted"
      | Error e ->
        Alcotest.failf "unknown model: wrong error %s"
          (Client.error_to_string e));
      Client.close c)

let daemon_survives_crc_flip () =
  with_daemon (fun ~server:_ ~store:_ ~address ->
      let c = Client.connect address in
      let framed = Protocol.frame (Protocol.encode_request Protocol.Ping) in
      (* flip a payload bit: CRC catches it; stream stays in sync *)
      let broken = Bytes.copy framed in
      let pos = Protocol.header_bytes in
      Bytes.set broken pos
        (Char.chr (Char.code (Bytes.get broken pos) lxor 1));
      Client.send_raw c broken;
      (match Client.read_response c with
      | Ok (Protocol.Error { code = Protocol.Bad_request; _ }) -> ()
      | Ok r ->
        Alcotest.failf "expected Bad_request, got %s"
          (match r with Protocol.Pong -> "Pong" | _ -> "other")
      | Error e -> Alcotest.failf "read: %s" (Client.error_to_string e));
      (* the same connection still works afterwards *)
      (match Client.ping c with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "connection died after recoverable error: %s"
          (Client.error_to_string e));
      Client.close c)

let daemon_survives_desync () =
  with_daemon (fun ~server:_ ~store:_ ~address ->
      (* bad magic: the server answers typed (best effort) and closes
         that connection — and only that connection *)
      let c = Client.connect address in
      Client.send_raw c (Bytes.of_string "XXXXXXXXXXXXXXXX");
      (match Client.read_response c with
      | Ok (Protocol.Error { code = Protocol.Bad_request; _ }) -> ()
      | Ok _ -> Alcotest.fail "desync answered non-error"
      | Error Client.Disconnected -> ()
      | Error e -> Alcotest.failf "read: %s" (Client.error_to_string e));
      (match Client.read_response c with
      | Error Client.Disconnected -> ()
      | Ok _ -> Alcotest.fail "connection not closed after desync"
      | Error _ -> () (* reset also counts as closed *));
      Client.close c;
      let c2 = Client.connect address in
      (match Client.ping c2 with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "daemon died with the connection: %s"
          (Client.error_to_string e));
      Client.close c2)

let daemon_expires_deadlines () =
  (* a long linger guarantees the deadline sweep sees the job expired
     before any batch forms *)
  with_daemon ~linger:0.05 (fun ~server ~store:_ ~address ->
      let c = Client.connect address in
      let data = Lazy.force mnist_image in
      (match Client.infer c ~deadline_ms:0 ~model:"lenet" data with
      | Error (Client.Refused { code = Protocol.Deadline_exceeded; _ }) -> ()
      | Ok _ -> Alcotest.fail "deadline 0 was scheduled"
      | Error e ->
        Alcotest.failf "deadline: wrong error %s" (Client.error_to_string e));
      let st = Admission.stats (Server.admission server) in
      Alcotest.(check int) "expired at the batch boundary" 1
        st.Admission.expired;
      Alcotest.(check int) "never scheduled" 0 st.Admission.batched_jobs;
      Client.close c)

let daemon_rejects_bad_geometry () =
  with_daemon (fun ~server:_ ~store:_ ~address ->
      let c = Client.connect address in
      (* 32x32x3 against a 28x28x1 model: typed Bad_request, no crash *)
      let data =
        (Ax_data.Cifar.generate ~seed:1 ~n:1 ()).Ax_data.Cifar.images
      in
      (match Client.infer c ~model:"lenet" data with
      | Error (Client.Refused { code = Protocol.Bad_request; _ }) -> ()
      | Ok _ -> Alcotest.fail "wrong geometry accepted"
      | Error e ->
        Alcotest.failf "geometry: wrong error %s" (Client.error_to_string e));
      (match Client.ping c with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "connection died: %s" (Client.error_to_string e));
      Client.close c)

(* 0xFFFFFFFF is the on-wire None of the optional deadline / error id:
   it must be unencodable as a *value* (else Some 0xFFFFFFFF silently
   decodes as None — the codec would not be a bijection) and a typed
   error when hand-crafted on the wire. *)
let sentinel_is_reserved () =
  let input = mk_tensor ~n:1 ~h:2 ~w:2 ~c:1 ~vseed:1 in
  let raises f =
    match f () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "deadline 0xFFFFFFFF unencodable" true
    (raises (fun () ->
         Protocol.encode_request
           (Protocol.Infer
              { id = 0; model = "m"; deadline_ms = Some 0xFFFFFFFF; input })));
  Alcotest.(check bool) "id 0xFFFFFFFF unencodable" true
    (raises (fun () ->
         Protocol.encode_request
           (Protocol.Infer
              { id = 0xFFFFFFFF; model = "m"; deadline_ms = None; input })));
  Alcotest.(check bool) "error id 0xFFFFFFFF unencodable" true
    (raises (fun () ->
         Protocol.encode_response
           (Protocol.Error
              {
                id = Some 0xFFFFFFFF;
                code = Protocol.Internal;
                retry_after_ms = 0;
                message = "";
              })));
  (* the boundary value below the sentinel round-trips exactly *)
  let req =
    Protocol.Infer
      { id = 0xFFFFFFFE; model = "m"; deadline_ms = Some 0xFFFFFFFE; input }
  in
  (match Protocol.decode_request (Protocol.encode_request req) with
  | Ok req' ->
    Alcotest.(check bool) "max-1 round-trips" true
      (Protocol.request_equal req req')
  | Error e -> Alcotest.failf "max-1 rejected: %s" (Load_error.to_string e));
  (* a hand-crafted frame carrying the reserved id is a typed error *)
  let crafted =
    Protocol.encode_request
      (Protocol.Infer { id = 0; model = "m"; deadline_ms = None; input })
  in
  Bytes.fill crafted 1 4 '\xff';
  match Protocol.decode_request crafted with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reserved wire id decoded"

(* The use-after-close race: a client EOFs while its requests are still
   in the admission queue; the pending deliveries must be dropped (the
   fd must not be closed out from under them and recycled) and every
   other connection must keep getting bit-identical answers. *)
let daemon_survives_vanishing_clients () =
  (* a long linger keeps jobs queued while their client disconnects *)
  with_daemon ~linger:0.05 (fun ~server:_ ~store ~address ->
      let data = Lazy.force mnist_image in
      for round = 0 to 4 do
        let c = Client.connect address in
        Client.send_raw c
          (Protocol.frame
             (Protocol.encode_request
                (Protocol.Infer
                   { id = round; model = "lenet"; deadline_ms = None;
                     input = data })));
        (* vanish before the response can possibly be delivered *)
        Client.close c
      done;
      let graph =
        match Store.find store "lenet" with
        | Some { Store.status = Store.Ready r; _ } -> r.Store.graph
        | _ -> Alcotest.fail "lenet not ready"
      in
      let expected =
        Tfapprox.Emulator.predictions ~verify:false ~domains:1 graph
          ~backend:Tfapprox.Emulator.Cpu_gemm data
      in
      let c = Client.connect address in
      (match Client.infer c ~id:9 ~model:"lenet" data with
      | Ok classes ->
        Alcotest.(check (array int))
          "survivor still bit-identical" expected classes
      | Error e -> Alcotest.failf "infer: %s" (Client.error_to_string e));
      Client.close c)

(* A stalled peer (partial frame, then silence) must be closed by the
   idle timeout instead of pinning its server thread forever. *)
let idle_timeout_closes_stalled_conn () =
  with_daemon ~idle_timeout:0.2 (fun ~server:_ ~store:_ ~address ->
      let c = Client.connect address in
      Client.send_raw c (Bytes.of_string "AXS1");
      (* partial header, then nothing: the server must hang up *)
      (match Client.read_response c with
      | Error Client.Disconnected -> ()
      | Error _ -> () (* reset also counts as closed *)
      | Ok _ -> Alcotest.fail "stalled connection got a response");
      Client.close c;
      let c2 = Client.connect address in
      (match Client.ping c2 with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "daemon died with the stalled conn: %s"
          (Client.error_to_string e));
      Client.close c2)

let connection_cap_refuses_typed () =
  with_daemon ~max_connections:1 (fun ~server:_ ~store:_ ~address ->
      let c1 = Client.connect address in
      (match Client.ping c1 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ping: %s" (Client.error_to_string e));
      let c2 = Client.connect address in
      (match Client.read_response c2 with
      | Ok (Protocol.Error { code = Protocol.Overloaded; retry_after_ms; _ })
        ->
        Alcotest.(check bool) "cap refusal carries a retry hint" true
          (retry_after_ms > 0)
      | Ok _ -> Alcotest.fail "over-cap connection got a non-error"
      | Error e ->
        Alcotest.failf "over-cap read: %s" (Client.error_to_string e));
      Client.close c2;
      Client.close c1;
      (* the seat frees up once c1 is gone *)
      let deadline = Unix.gettimeofday () +. 2. in
      let rec retry () =
        let c3 = Client.connect address in
        match Client.ping c3 with
        | Ok () -> Client.close c3
        | Error _ ->
          Client.close c3;
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "capacity never freed after close"
          else begin
            Thread.delay 0.02;
            retry ()
          end
      in
      retry ())

(* A response echoing the wrong id must never be accepted as the
   current request's answer.  Driven against a fake daemon that replies
   off-by-one. *)
let stale_id_is_rejected () =
  let path = temp_socket () in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 1;
  let fake =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listen_fd in
        (match Protocol.read_frame fd with
        | `Payload _ ->
          Protocol.write_frame fd
            (Protocol.encode_response
               (Protocol.Predictions { id = 8; classes = [| 1 |] }))
        | _ -> ());
        Unix.close fd)
      ()
  in
  let c = Client.connect (Server.Unix_sock path) in
  let input = mk_tensor ~n:1 ~h:2 ~w:2 ~c:1 ~vseed:2 in
  (match Client.infer c ~id:7 ~model:"m" input with
  | Error (Client.Unexpected (Protocol.Predictions { id = 8; _ })) -> ()
  | Ok _ -> Alcotest.fail "mismatched Predictions id accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Client.error_to_string e));
  Client.close c;
  Thread.join fake;
  Unix.close listen_fd;
  (try Sys.remove path with Sys_error _ -> ())

let qsuite name tests =
  ( name,
    List.map
      (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]))
      tests )

let () =
  Alcotest.run "serve"
    [
      qsuite "protocol"
        [
          roundtrip_request; roundtrip_response; truncation_fuzz;
          bitflip_fuzz; garbage_fuzz; framed_garbage_fuzz;
        ];
      ( "framing",
        [
          Alcotest.test_case "oversized frame refused" `Quick
            oversized_rejected;
          Alcotest.test_case "recoverable classification" `Quick
            recoverable_classification;
          Alcotest.test_case "0xFFFFFFFF sentinel is reserved" `Quick
            sentinel_is_reserved;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload is bounded and typed" `Quick
            overload_is_bounded;
          Alcotest.test_case "expired jobs never reach the scheduler" `Quick
            expired_never_scheduled;
          Alcotest.test_case "per-model FIFO batching" `Quick
            batches_are_per_model_fifo;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "ping + bit-identical infer" `Quick
            daemon_ping_and_infer;
          Alcotest.test_case "CRC flip: typed error, connection lives" `Quick
            daemon_survives_crc_flip;
          Alcotest.test_case "desync closes connection, daemon lives" `Quick
            daemon_survives_desync;
          Alcotest.test_case "deadline 0 expires at the batch boundary" `Quick
            daemon_expires_deadlines;
          Alcotest.test_case "wrong geometry is a typed refusal" `Quick
            daemon_rejects_bad_geometry;
          Alcotest.test_case "vanishing clients never corrupt others" `Quick
            daemon_survives_vanishing_clients;
          Alcotest.test_case "idle timeout unpins stalled connections" `Quick
            idle_timeout_closes_stalled_conn;
          Alcotest.test_case "connection cap refuses typed" `Quick
            connection_cap_refuses_typed;
          Alcotest.test_case "stale response id is rejected" `Quick
            stale_id_is_rejected;
        ] );
    ]
