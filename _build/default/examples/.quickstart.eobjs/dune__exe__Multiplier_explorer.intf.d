examples/multiplier_explorer.mli:
