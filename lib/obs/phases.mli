(** Named wall-clock phase accounting with partition semantics.

    A generalization of the Fig. 2 accumulator: phases are identified by
    string and the timed totals always partition real elapsed time —
    a nested {!time} charges the inner phase and refunds the outer one,
    so no second is counted twice.  {!time} also captures
    [Gc.quick_stat] deltas with the same partition semantics, so each
    phase's allocation pressure (minor/major words, collection counts)
    is attributed alongside its seconds.  {!Ax_nn.Profile} layers its
    four-phase view on top of this module. *)

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

val gc_zero : gc_delta
val gc_add : gc_delta -> gc_delta -> gc_delta

type t

val create : unit -> t
val reset : t -> unit

val time : t -> string -> (unit -> 'a) -> 'a
(** Charge a thunk's wall-clock time and GC deltas to a phase; nested
    calls charge the inner phase and subtract the same amounts from the
    outer one. *)

val add_seconds : t -> string -> float -> unit
(** Charge externally measured time.  Negative values are accepted (the
    refund path uses them); consumers that render shares clamp at 0. *)

val add_gc : t -> string -> gc_delta -> unit
(** Charge an externally measured GC delta (the shard-merge path). *)

val seconds : t -> string -> float
(** [0.] for a phase never charged. *)

val gc_delta : t -> string -> gc_delta
(** {!gc_zero} for a phase never charged. *)

val total : t -> float
(** Sum over all phases (refunds included, so this tracks real elapsed
    time of the outermost [time] calls). *)

val gc_total : t -> gc_delta
(** GC deltas summed over all phases. *)

val names : t -> string list
(** Phases ever charged, sorted. *)

val to_json : t -> Json.t
(** [{"<phase>": seconds, ...}], sorted by phase name. *)

val gc_delta_to_json : gc_delta -> Json.t

val gc_to_json : t -> Json.t
(** [{"<phase>": {minor_words, ...}, ...}], sorted by phase name. *)

val publish_gc : t -> Metrics.t -> unit
(** Export each phase's GC delta as gauges:
    [phase_<name>_minor_words], [phase_<name>_major_words],
    [phase_<name>_minor_collections], [phase_<name>_major_collections].
    Gauges, so repeated publication is idempotent. *)
