(** Netlist simulation.

    Two entry points: single-pattern Boolean evaluation, and 64-way
    bit-parallel evaluation where every lane of an [int64] word carries an
    independent test vector.  The bit-parallel path makes exhaustive
    characterisation of an 8x8 multiplier (65 536 patterns) cost only
    1 024 sweeps over the netlist. *)

val eval : Circuit.t -> bool array -> bool array
(** [eval c ins] evaluates [c] with primary inputs bound (in creation
    order) to [ins] and returns the outputs in registration order.
    Raises [Invalid_argument] if [ins] has the wrong length. *)

val eval_words : Circuit.t -> int64 array -> int64 array
(** Bit-parallel version of {!eval}: lane [k] of each word is an
    independent evaluation. *)

val eval_unsigned : Circuit.t -> input_bits:int list -> int -> int
(** [eval_unsigned c ~input_bits x] binds the circuit's inputs from the
    little-endian binary expansion of [x], where [input_bits] gives the
    width of each primary input group in creation order (their sum must
    equal the number of inputs), and reads the outputs back as an
    unsigned little-endian integer. *)

val truth_table_2x : Circuit.t -> width_a:int -> width_b:int ->
  (int -> int -> int)
(** [truth_table_2x c ~width_a ~width_b] exhaustively simulates a circuit
    whose inputs are two unsigned operands of the given widths (in
    creation order: all bits of [a] LSB-first, then all bits of [b]) and
    returns a memoised function over the full input space.  Output bits
    are assembled LSB-first from the registered outputs.  Uses the
    bit-parallel simulator. *)
