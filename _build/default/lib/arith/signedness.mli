(** Operand signedness of an 8-bit multiplier and the associated
    value/code conversions.

    A {e code} is the raw 8-bit pattern (0..255) used to index the LUT; a
    {e value} is the integer the pattern denotes: [0..255] for unsigned
    multipliers, [-128..127] (two's complement) for signed ones — the two
    quantized ranges the paper supports. *)

type t = Signed | Unsigned

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val min_value : t -> int
(** Smallest representable operand value: [-128] or [0]. *)

val max_value : t -> int
(** Largest representable operand value: [127] or [255]. *)

val in_range : t -> int -> bool

val code_of_value : t -> int -> int
(** [code_of_value s v] is the 8-bit pattern for [v].  Raises
    [Invalid_argument] when [v] is out of range. *)

val value_of_code : t -> int -> int
(** [value_of_code s c] decodes pattern [c] (0..255). *)

val clamp : t -> int -> int
(** Saturate an integer into the representable operand range. *)

val max_abs_product : t -> int
(** Largest possible [|a*b|] over the operand range; normalisation
    constant for relative error metrics. *)
