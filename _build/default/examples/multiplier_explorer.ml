(* The Sec. V use-case: "automated design of approximate DNN
   accelerators in which many candidate designs have to be quickly
   evaluated".  For every catalogued 8-bit multiplier this prints the
   arithmetic error profile, the hardware cost of a comparable
   gate-level implementation, and the end-to-end classification
   fidelity on a small ResNet — the Pareto ingredients an accelerator
   designer trades off.

   Run with: dune exec examples/multiplier_explorer.exe *)

module Registry = Ax_arith.Registry
module Metrics = Ax_arith.Error_metrics
module Power = Ax_netlist.Power
module Multipliers = Ax_netlist.Multipliers
module Emulator = Tfapprox.Emulator
module Resnet = Ax_models.Resnet
module Cifar = Ax_data.Cifar

(* Gate-level proxies: hardware cost of the closest structural variant. *)
let hardware_proxy name =
  let circuit_of m = m.Multipliers.circuit in
  let build () =
    if name = "mul8u_exact" || name = "mul8u_drum3" || name = "mul8u_drum4"
       || name = "mul8u_drum6" || name = "mul8u_mitchell"
       || name = "mul8u_kulkarni"
    then Some (circuit_of (Multipliers.unsigned_array ~bits:8))
    else if name = "mul8u_trunc4" then
      Some (circuit_of (Multipliers.truncated ~bits:8 ~cut:4))
    else if name = "mul8u_trunc6" then
      Some (circuit_of (Multipliers.truncated ~bits:8 ~cut:6))
    else if name = "mul8u_trunc8" then
      Some (circuit_of (Multipliers.truncated ~bits:8 ~cut:8))
    else if name = "mul8u_trunc10" then
      Some (circuit_of (Multipliers.truncated ~bits:8 ~cut:10))
    else if name = "mul8u_bam_h2_v6" then
      Some (circuit_of (Multipliers.broken_array ~bits:8 ~hbl:2 ~vbl:6))
    else if name = "mul8u_bam_h3_v8" then
      Some (circuit_of (Multipliers.broken_array ~bits:8 ~hbl:3 ~vbl:8))
    else None
  in
  build ()

let () =
  let unsigned_entries =
    List.filter
      (fun e ->
        Ax_arith.Signedness.equal e.Registry.signedness
          Ax_arith.Signedness.Unsigned
        && e.Registry.provenance = Registry.Behavioural)
      (Registry.all ())
  in
  Format.printf "%-18s %9s %7s %8s | %8s %7s %8s %9s@." "multiplier" "MAE"
    "WCE" "err-prob" "area" "delay" "power" "MAC e-%";
  List.iter
    (fun e ->
      let m = Metrics.compute_lut (Registry.lut e) in
      (match hardware_proxy e.Registry.name with
      | Some circuit ->
        let r = Power.analyze circuit in
        let savings =
          Ax_gpusim.Energy.savings_percent
            (Ax_gpusim.Energy.mac_of_circuit circuit)
        in
        Format.printf "%-18s %9.2f %7d %7.1f%% | %8.0f %7.1f %8.2f %8.1f%%@."
          e.Registry.name m.Metrics.mae m.Metrics.wce
          (100. *. m.Metrics.error_probability)
          r.Power.area r.Power.delay r.Power.power savings
      | None ->
        Format.printf "%-18s %9.2f %7d %7.1f%% | %8s %7s %8s %9s@."
          e.Registry.name m.Metrics.mae m.Metrics.wce
          (100. *. m.Metrics.error_probability)
          "-" "-" "-" "-"))
    unsigned_entries;

  (* End-to-end: which error profiles survive a real network? *)
  Format.printf
    "@.End-to-end fidelity on ResNet-8 (signed variants, 30 images):@.";
  let graph = Resnet.build ~depth:8 () in
  let dataset = Cifar.generate ~n:30 () in
  let reference =
    Emulator.predictions graph ~backend:Emulator.Cpu_accurate
      dataset.Cifar.images
  in
  List.iter
    (fun multiplier ->
      let approx = Emulator.approximate_model ~multiplier graph in
      let preds =
        Emulator.predictions approx ~backend:Emulator.Cpu_gemm
          dataset.Cifar.images
      in
      Format.printf "  %-18s fidelity %5.1f%%@." multiplier
        (100. *. Emulator.agreement reference preds))
    [ "mul8s_exact"; "mul8s_trunc6"; "mul8s_drum4"; "mul8s_mitchell" ];
  Format.printf
    "@.Area/delay/power come from the unit-gate model over the gate-level@.";
  Format.printf
    "netlists in ax_netlist; behavioural-only designs show '-'.@."
