(** Netlist clean-up passes.

    The builder already folds constants and hash-conses structurally
    equal gates; these passes handle what construction-time rewriting
    cannot see — logic that no primary output depends on (common after
    pruning partial products out of a multiplier, which strands chunks
    of the compression tree). *)

val strip_dead : Circuit.t -> Circuit.t
(** Rebuild the circuit keeping only the cone of influence of the
    outputs.  Primary inputs are always kept (interface stability), in
    their original order; gate evaluation order is preserved. *)

type stats = {
  nodes_before : int;
  nodes_after : int;
  gates_before : int;
  gates_after : int;
}

val strip_dead_with_stats : Circuit.t -> Circuit.t * stats
