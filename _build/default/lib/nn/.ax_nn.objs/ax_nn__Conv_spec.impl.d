lib/nn/conv_spec.ml: Ax_tensor Filter Printf
