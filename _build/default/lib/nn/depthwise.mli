(** Depthwise 2D convolution, accurate and approximate.

    The paper (Sec. II) introduces "an alternative approximate 2D
    convolutional layer to each type of the 2D convolution" available in
    TensorFlow; depthwise convolution (the backbone of the MobileNet
    family) is the second such type.  Each input channel [c] is
    convolved with its own [kh x kw x multiplier] filter slice,
    producing output channels [c*multiplier .. c*multiplier+multiplier-1].

    The filter bank reuses {!Filter.t} with [in_c] = input channels and
    [out_c] = channel multiplier; the reduction length of Eq. 4 is
    [N = kh*kw] (one channel deep), and the [Sp]/[Sf] corrections are
    kept per input channel accordingly. *)

val output_shape :
  spec:Conv_spec.t -> Ax_tensor.Shape.t -> Filter.t -> Ax_tensor.Shape.t
(** Output is [n x out_h x out_w x (in_c * multiplier)].  Raises
    [Invalid_argument] when input channels do not match the filter. *)

val macs : spec:Conv_spec.t -> Ax_tensor.Shape.t -> Filter.t -> int

val float_conv :
  input:Ax_tensor.Tensor.t ->
  filter:Filter.t ->
  ?bias:float array ->
  spec:Conv_spec.t ->
  unit ->
  Ax_tensor.Tensor.t
(** Accurate float reference.  [bias] has [in_c * multiplier] entries. *)

val approx_conv :
  ?profile:Profile.t ->
  config:Axconv.config ->
  input:Ax_tensor.Tensor.t ->
  input_range:Ax_quant.Range.t ->
  filter:Filter.t ->
  filter_range:Ax_quant.Range.t ->
  ?bias:float array ->
  spec:Conv_spec.t ->
  unit ->
  Ax_tensor.Tensor.t
(** LUT-emulated depthwise convolution with Eq. 4 corrections — the
    AxDepthwiseConv2D layer. *)
