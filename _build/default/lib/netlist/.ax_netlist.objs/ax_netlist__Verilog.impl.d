lib/netlist/verilog.ml: Buffer Circuit Gate List Multipliers Printf String
