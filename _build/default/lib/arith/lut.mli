(** The 256x256 look-up table representation of an 8-bit multiplier —
    the paper's central data structure (Sec. II: "The approximate
    multiplication is specified by means of its truth table. ... the
    truth table for an 8-bit multiplier occupies only 128 kB").

    Entries are 16-bit: unsigned products saturate into [0..65535],
    signed products into [-32768..32767] (two's complement), matching a
    16-bit hardware product register.  Lookup is by {e code}: the raw
    8-bit operand patterns stitched into a 16-bit index, exactly the
    [tex1Dfetch<ushort>] indexing scheme of the CUDA implementation. *)

type t

val entries : int
(** Number of table entries: [65536]. *)

val size_bytes : int
(** Payload size in bytes: [131072] (the paper's 128 kB). *)

val make : signedness:Signedness.t -> (int -> int -> int) -> t
(** [make ~signedness f] tabulates [f] over the full operand range.
    [f] receives decoded {e values} (e.g. [-128..127] when signed). *)

val exact : Signedness.t -> t
(** Table of the exact multiplier for the given signedness. *)

val signedness : t -> Signedness.t

val lookup_code : t -> int -> int -> int
(** [lookup_code t ca cb] looks up operand bit patterns (0..255 each) and
    returns the decoded product value.  This is the hot path of the
    emulator; bounds are the caller's responsibility (values are masked
    to 8 bits, never raising). *)

val lookup_value : t -> int -> int -> int
(** [lookup_value t a b] converts operand values through
    {!Signedness.code_of_value} first; convenient and checked, but
    slower than {!lookup_code}. *)

val raw_index : int -> int -> int
(** [raw_index ca cb] is the stitched 16-bit index [(ca << 8) | cb]. *)

val to_function : t -> int -> int -> int
(** The table as a value-domain multiplier function. *)

val equal : t -> t -> bool
(** Same signedness and identical entries. *)

val to_bytes : t -> Bytes.t
(** The serialised form: "AXLUT1" magic, signedness byte, then 65536
    little-endian 16-bit entries (131 079 bytes total). *)

val of_bytes : Bytes.t -> pos:int -> t * int
(** Decode a table from a buffer at [pos]; returns the table and the
    position past it.  Raises [Failure] on malformed input. *)

val save : string -> t -> unit
(** Persist {!to_bytes} to a file. *)

val load : string -> t
(** Inverse of {!save}.  Raises [Failure] on malformed input. *)
