(* Tests for shapes, tensors, the blocked GEMM and the deterministic RNG. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Matrix = Ax_tensor.Matrix
module Rng = Ax_tensor.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* --- shape --- *)

let test_shape_basics () =
  let s = Shape.make ~n:2 ~h:3 ~w:4 ~c:5 in
  check_int "elements" 120 (Shape.num_elements s);
  check_bool "equal" true (Shape.equal s (Shape.make ~n:2 ~h:3 ~w:4 ~c:5));
  check_bool "unequal" false (Shape.equal s (Shape.make ~n:2 ~h:3 ~w:4 ~c:6));
  Alcotest.(check string) "to_string" "2x3x4x5" (Shape.to_string s)

let test_shape_rejects_nonpositive () =
  Alcotest.check_raises "zero extent"
    (Invalid_argument "Shape.make: bad extent 1x0x4x5") (fun () ->
      ignore (Shape.make ~n:1 ~h:0 ~w:4 ~c:5));
  Alcotest.check_raises "negative batch"
    (Invalid_argument "Shape.make: bad extent -1x2x4x5") (fun () ->
      ignore (Shape.make ~n:(-1) ~h:2 ~w:4 ~c:5));
  (* A zero-image batch is a legal shape (empty-batch plumbing). *)
  check_int "empty batch" 0
    (Shape.num_elements (Shape.make ~n:0 ~h:2 ~w:4 ~c:5))

let test_shape_offset_layout () =
  (* NHWC: channels fastest-varying. *)
  let s = Shape.make ~n:2 ~h:3 ~w:4 ~c:5 in
  check_int "c stride 1" 1
    (Shape.offset s ~n:0 ~h:0 ~w:0 ~c:1 - Shape.offset s ~n:0 ~h:0 ~w:0 ~c:0);
  check_int "w stride c" 5
    (Shape.offset s ~n:0 ~h:0 ~w:1 ~c:0 - Shape.offset s ~n:0 ~h:0 ~w:0 ~c:0);
  check_int "h stride w*c" 20
    (Shape.offset s ~n:0 ~h:1 ~w:0 ~c:0 - Shape.offset s ~n:0 ~h:0 ~w:0 ~c:0);
  check_int "n stride h*w*c" 60
    (Shape.offset s ~n:1 ~h:0 ~w:0 ~c:0 - Shape.offset s ~n:0 ~h:0 ~w:0 ~c:0)

let test_shape_offset_bounds () =
  let s = Shape.make ~n:1 ~h:2 ~w:2 ~c:1 in
  Alcotest.check_raises "h out of range"
    (Invalid_argument "Shape.offset: (0,2,0,0) out of 1x2x2x1") (fun () ->
      ignore (Shape.offset s ~n:0 ~h:2 ~w:0 ~c:0))

let test_conv_output_dims_same () =
  let s = Shape.make ~n:1 ~h:32 ~w:32 ~c:3 in
  let oh, ow, pt, pl =
    Shape.conv_output_dims s ~kh:3 ~kw:3 ~stride:1 ~dilation:1 ~padding:`Same
  in
  check_int "same oh" 32 oh;
  check_int "same ow" 32 ow;
  check_int "same pad top" 1 pt;
  check_int "same pad left" 1 pl;
  let oh, ow, _, _ =
    Shape.conv_output_dims s ~kh:3 ~kw:3 ~stride:2 ~dilation:1 ~padding:`Same
  in
  check_int "strided oh" 16 oh;
  check_int "strided ow" 16 ow

let test_conv_output_dims_valid () =
  let s = Shape.make ~n:1 ~h:32 ~w:32 ~c:3 in
  let oh, ow, pt, pl =
    Shape.conv_output_dims s ~kh:5 ~kw:5 ~stride:1 ~dilation:1 ~padding:`Valid
  in
  check_int "valid oh" 28 oh;
  check_int "valid ow" 28 ow;
  check_int "no pad" 0 (pt + pl);
  let oh, ow, _, _ =
    Shape.conv_output_dims s ~kh:3 ~kw:3 ~stride:1 ~dilation:2 ~padding:`Valid
  in
  check_int "dilated oh" 28 oh;
  check_int "dilated ow" 28 ow

let test_conv_output_dims_kernel_too_big () =
  let s = Shape.make ~n:1 ~h:4 ~w:4 ~c:1 in
  Alcotest.check_raises "kernel too big"
    (Invalid_argument "Shape.conv_output_dims: kernel larger than input")
    (fun () ->
      ignore
        (Shape.conv_output_dims s ~kh:5 ~kw:5 ~stride:1 ~dilation:1
           ~padding:`Valid))

(* --- tensor --- *)

let test_tensor_get_set () =
  let t = Tensor.create (Shape.make ~n:2 ~h:2 ~w:2 ~c:2) in
  Tensor.set t ~n:1 ~h:0 ~w:1 ~c:1 3.5;
  check_float "readback" 3.5 (Tensor.get t ~n:1 ~h:0 ~w:1 ~c:1);
  check_float "other zero" 0. (Tensor.get t ~n:0 ~h:0 ~w:0 ~c:0)

let test_tensor_of_to_array () =
  let s = Shape.make ~n:1 ~h:2 ~w:2 ~c:1 in
  let t = Tensor.of_array s [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (array (float 1e-6))) "roundtrip" [| 1.; 2.; 3.; 4. |]
    (Tensor.to_array t);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Tensor.of_array: 3 values for shape 1x2x2x1")
    (fun () -> ignore (Tensor.of_array s [| 1.; 2.; 3. |]))

let test_tensor_min_max_add () =
  let s = Shape.make ~n:1 ~h:1 ~w:4 ~c:1 in
  let a = Tensor.of_array s [| -3.; 7.; 0.; 2. |] in
  let mn, mx = Tensor.min_max a in
  check_float "min" (-3.) mn;
  check_float "max" 7. mx;
  let b = Tensor.of_array s [| 1.; 1.; 1.; 1. |] in
  Alcotest.(check (array (float 1e-6))) "add" [| -2.; 8.; 1.; 3. |]
    (Tensor.to_array (Tensor.add a b))

let test_tensor_float32_storage () =
  (* Values are stored in 32-bit floats: 0.1 is not exactly representable. *)
  let t = Tensor.create (Shape.make ~n:1 ~h:1 ~w:1 ~c:1) in
  Tensor.set_flat t 0 0.1;
  check_bool "f32 rounding" true (Tensor.get_flat t 0 <> 0.1);
  check_bool "f32 close" true (abs_float (Tensor.get_flat t 0 -. 0.1) < 1e-7)

let test_slice_and_concat_batch () =
  let s = Shape.make ~n:4 ~h:1 ~w:2 ~c:1 in
  let t = Tensor.init s (fun ~n ~h:_ ~w ~c:_ -> float_of_int ((n * 10) + w)) in
  let chunk = Tensor.slice_batch t ~start:1 ~count:2 in
  check_int "chunk n" 2 (Tensor.shape chunk).Shape.n;
  check_float "chunk first" 10. (Tensor.get chunk ~n:0 ~h:0 ~w:0 ~c:0);
  check_float "chunk last" 21. (Tensor.get chunk ~n:1 ~h:0 ~w:1 ~c:0);
  let back =
    Tensor.concat_batch
      [
        Tensor.slice_batch t ~start:0 ~count:1;
        Tensor.slice_batch t ~start:1 ~count:2;
        Tensor.slice_batch t ~start:3 ~count:1;
      ]
  in
  check_bool "concat inverts slicing" true (Tensor.approx_equal t back)

let test_slice_bounds () =
  let t = Tensor.create (Shape.make ~n:2 ~h:1 ~w:1 ~c:1) in
  Alcotest.check_raises "range"
    (Invalid_argument "Tensor.slice_batch: range out of bounds") (fun () ->
      ignore (Tensor.slice_batch t ~start:1 ~count:2))

let test_fill_gaussian_stats () =
  let t = Tensor.create (Shape.make ~n:1 ~h:100 ~w:100 ~c:1) in
  Tensor.fill_gaussian ~mean:2. ~stddev:0.5 (Rng.create 11) t;
  let n = float_of_int (Tensor.num_elements t) in
  let mean = Tensor.fold ( +. ) 0. t /. n in
  let var =
    Tensor.fold (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. t /. n
  in
  check_bool "mean near 2" true (abs_float (mean -. 2.) < 0.02);
  check_bool "stddev near 0.5" true (abs_float (sqrt var -. 0.5) < 0.02)

(* --- matrix --- *)

let test_matmul_small () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Matrix.matmul a b in
  Alcotest.(check (array (array (float 1e-9))))
    "2x2 product"
    [| [| 19.; 22. |]; [| 43.; 50. |] |]
    (Matrix.to_arrays c)

let test_matmul_identity () =
  let rng = Rng.create 3 in
  let a = Matrix.create ~rows:7 ~cols:7 in
  for i = 0 to 6 do
    for j = 0 to 6 do
      Matrix.set a i j (Rng.gaussian rng)
    done
  done;
  let id = Matrix.create ~rows:7 ~cols:7 in
  for i = 0 to 6 do
    Matrix.set id i i 1.
  done;
  check_bool "A*I = A" true (Matrix.approx_equal (Matrix.matmul a id) a);
  check_bool "I*A = A" true (Matrix.approx_equal (Matrix.matmul id a) a)

let test_matmul_dim_mismatch () =
  let a = Matrix.create ~rows:2 ~cols:3 in
  let b = Matrix.create ~rows:2 ~cols:3 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Matrix.matmul: 2x3 times 2x3") (fun () ->
      ignore (Matrix.matmul a b))

let test_transpose_involution () =
  let a = Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let tt = Matrix.transpose (Matrix.transpose a) in
  check_bool "transpose twice" true (Matrix.approx_equal a tt);
  check_float "t(0,1)=a(1,0)" 4. (Matrix.get (Matrix.transpose a) 0 1)

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different seeds" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_int_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    check_bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_rng_split_independent () =
  let parent = Rng.create 13 in
  let child = Rng.split parent in
  check_bool "distinct streams" true
    (Rng.next_int64 parent <> Rng.next_int64 child)

let test_rng_copy_forks_state () =
  let a = Rng.create 21 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check_bool "copies agree" true (Rng.next_int64 a = Rng.next_int64 b)

(* --- qcheck properties --- *)

let prop_matmul_distributes =
  (* (A+B)C = AC + BC on small random matrices. *)
  QCheck.Test.make ~name:"matmul distributes over addition" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let mk () =
        let m = Matrix.create ~rows:4 ~cols:4 in
        for i = 0 to 3 do
          for j = 0 to 3 do
            Matrix.set m i j (Rng.gaussian rng)
          done
        done;
        m
      in
      let a = mk () and b = mk () and c = mk () in
      let ab = Matrix.create ~rows:4 ~cols:4 in
      for i = 0 to 3 do
        for j = 0 to 3 do
          Matrix.set ab i j (Matrix.get a i j +. Matrix.get b i j)
        done
      done;
      let left = Matrix.matmul ab c in
      let ac = Matrix.matmul a c and bc = Matrix.matmul b c in
      let right = Matrix.create ~rows:4 ~cols:4 in
      for i = 0 to 3 do
        for j = 0 to 3 do
          Matrix.set right i j (Matrix.get ac i j +. Matrix.get bc i j)
        done
      done;
      Matrix.approx_equal ~tolerance:1e-9 left right)

let prop_slice_concat_roundtrip =
  QCheck.Test.make ~name:"slice/concat batch roundtrip" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 5))
    (fun (n, h) ->
      let s = Shape.make ~n ~h ~w:2 ~c:3 in
      let t = Tensor.create s in
      Tensor.fill_uniform (Rng.create (n + (h * 100))) t;
      let pieces =
        List.init n (fun i -> Tensor.slice_batch t ~start:i ~count:1)
      in
      Tensor.approx_equal t (Tensor.concat_batch pieces))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_matmul_distributes; prop_slice_concat_roundtrip ]
  in
  Alcotest.run "ax_tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "rejects non-positive" `Quick
            test_shape_rejects_nonpositive;
          Alcotest.test_case "NHWC layout" `Quick test_shape_offset_layout;
          Alcotest.test_case "offset bounds" `Quick test_shape_offset_bounds;
          Alcotest.test_case "conv dims (same)" `Quick
            test_conv_output_dims_same;
          Alcotest.test_case "conv dims (valid)" `Quick
            test_conv_output_dims_valid;
          Alcotest.test_case "kernel too big" `Quick
            test_conv_output_dims_kernel_too_big;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "get/set" `Quick test_tensor_get_set;
          Alcotest.test_case "of/to array" `Quick test_tensor_of_to_array;
          Alcotest.test_case "min/max/add" `Quick test_tensor_min_max_add;
          Alcotest.test_case "float32 storage" `Quick
            test_tensor_float32_storage;
          Alcotest.test_case "slice/concat batch" `Quick
            test_slice_and_concat_batch;
          Alcotest.test_case "slice bounds" `Quick test_slice_bounds;
          Alcotest.test_case "gaussian fill stats" `Quick
            test_fill_gaussian_stats;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "small product" `Quick test_matmul_small;
          Alcotest.test_case "identity" `Quick test_matmul_identity;
          Alcotest.test_case "dim mismatch" `Quick test_matmul_dim_mismatch;
          Alcotest.test_case "transpose involution" `Quick
            test_transpose_involution;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "copy forks state" `Quick
            test_rng_copy_forks_state;
        ] );
      ("properties", qsuite);
    ]
