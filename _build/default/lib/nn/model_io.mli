(** Model serialization: the whole graph IR — structure, parameters,
    and, for transformed models, the embedded 128 kB multiplier LUTs —
    in one deterministic binary file, so a transformed accelerator model
    is a distributable artefact (the role a SavedModel plays for the
    original TFApprox).

    Format "AXMDL1": little-endian, length-prefixed strings, float
    parameters as raw IEEE-754 bit patterns (bit-exact roundtrip). *)

val to_bytes : Graph.t -> Bytes.t

val of_bytes : Bytes.t -> Graph.t
(** Raises [Failure] on malformed input (bad magic, truncation, unknown
    op tags). *)

val save : string -> Graph.t -> unit
val load : string -> Graph.t
