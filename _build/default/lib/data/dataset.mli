(** The labelled-image dataset record shared by every generator, so
    trainers and evaluators are dataset-agnostic. *)

type t = { images : Ax_tensor.Tensor.t; labels : int array }

val size : t -> int
(** Number of images; raises [Invalid_argument] when images and labels
    disagree. *)
