(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   The value fits in 32 bits and is kept in a plain OCaml int. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let of_bytes buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.of_bytes: range out of bounds";
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code (Bytes.get buf i)) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let of_string s = of_bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let append_u32_le buf v =
  for byte = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * byte)) land 0xff))
  done

let write_u32_le buf ~pos v =
  for byte = 0 to 3 do
    Bytes.set buf (pos + byte) (Char.chr ((v lsr (8 * byte)) land 0xff))
  done

let read_u32_le buf ~pos =
  let b i = Char.code (Bytes.get buf (pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
