(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus the ablations listed in DESIGN.md.

     dune exec bench/main.exe              # everything (a few minutes)
     dune exec bench/main.exe -- table1    # Table I only
     dune exec bench/main.exe -- fig2      # Fig. 2 only
     dune exec bench/main.exe -- micro     # Bechamel kernel micro-benches
     dune exec bench/main.exe -- lut-independence
     dune exec bench/main.exe -- cache-ablation
     dune exec bench/main.exe -- chunk-ablation
     dune exec bench/main.exe -- accumulator-ablation
     dune exec bench/main.exe -- workloads
     dune exec bench/main.exe -- round-modes
     dune exec bench/main.exe -- per-layer
     dune exec bench/main.exe -- device-sweep
     dune exec bench/main.exe -- pool    # sharded emulator, domains 1 vs N
     dune exec bench/main.exe -- gemm    # hot-path throughput + alloc/obs gates
     dune exec bench/main.exe -- history # bench trajectory + regression gate
     dune exec bench/main.exe -- trace   # Chrome trace + metrics JSON dump
     dune exec bench/main.exe -- resilience  # LUT-bit fault sensitivity

   CPU columns are measured on this host over a small image sample and
   scaled (reported); GPU columns come from the ax_gpusim execution
   model.  See EXPERIMENTS.md for the paper-vs-ours comparison. *)

open Bechamel
open Toolkit

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Axconv = Ax_nn.Axconv
module Registry = Ax_arith.Registry
module Lut = Ax_arith.Lut
module Device = Ax_gpusim.Device
module Cost = Ax_gpusim.Cost
module Resnet = Ax_models.Resnet
module Cifar = Ax_data.Cifar
module Experiments = Tfapprox.Experiments
module Report = Tfapprox.Report

let images_measured =
  match Sys.getenv_opt "TFAPPROX_BENCH_IMAGES" with
  | Some s -> int_of_string s
  | None -> 2

let section title = Format.printf "@.==== %s ====@.@." title

(* ------------------------------------------------------------------ *)
(* E1: Table I                                                         *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "E1: Table I (CPU measured & scaled to 10k images; GPU modelled)";
  Format.printf "CPU sample: %d images per network, scaled x%d@.@."
    images_measured
    (10_000 / images_measured);
  let rows = Experiments.table1 ~images_measured () in
  Report.print_table1 Format.std_formatter rows;
  (* The paper's headline shape: speedup grows with depth. *)
  let speedups = List.map (fun r -> r.Experiments.speedup_approx) rows in
  let monotone =
    let rec go = function
      | a :: (b :: _ as rest) -> a <= b +. (0.15 *. b) && go rest
      | [ _ ] | [] -> true
    in
    go speedups
  in
  Format.printf "speedup grows with depth (paper: 107x -> 213x): %b@."
    monotone

(* ------------------------------------------------------------------ *)
(* E2: Fig. 2                                                          *)
(* ------------------------------------------------------------------ *)

let run_fig2 () =
  section "E2: Fig. 2 time distribution (CPU measured, GPU modelled)";
  let rows = Experiments.fig2 ~images_measured () in
  Report.print_fig2 Format.std_formatter rows;
  Format.printf
    "paper, ResNet-62: CPU 0.8/64/7/28%%, GPU 10/20/26/43%% (init/quant/LUT/rest)@."

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let conv_inputs () =
  let input = Tensor.create (Shape.make ~n:1 ~h:16 ~w:16 ~c:8) in
  Tensor.fill_uniform ~lo:(-1.) ~hi:1. (Rng.create 3) input;
  let filter = Filter.create ~kh:3 ~kw:3 ~in_c:8 ~out_c:16 in
  Filter.fill_he_normal (Rng.create 4) filter;
  let input_range = Ax_quant.Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let filter_range = Ax_quant.Range.make ~min:fmin ~max:fmax in
  (input, filter, input_range, filter_range)

let axconv_test ~name multiplier strategy =
  let input, filter, input_range, filter_range = conv_inputs () in
  let config =
    Axconv.make_config (Registry.lut (Registry.find_exn multiplier))
  in
  let conv ~config ~input ~input_range ~filter ~filter_range ~spec () =
    match strategy with
    | `Gemm ->
      Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ()
    | `Direct ->
      Ax_nn.Conv_direct.conv ~config ~input ~input_range ~filter ~filter_range
        ~spec ()
  in
  Test.make ~name
    (Staged.stage (fun () ->
         ignore
           (conv ~config ~input ~input_range ~filter ~filter_range
              ~spec:Conv_spec.default ())))

let micro_tests () =
  let lut = Registry.lut (Registry.find_exn "mul8u_trunc8") in
  let rng = Rng.create 9 in
  let codes = Array.init 4096 (fun _ -> (Rng.int rng 256, Rng.int rng 256)) in
  let lut_lookup =
    Test.make ~name:"lut-lookup-4096"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Array.iter
             (fun (a, b) -> acc := !acc + Lut.lookup_code lut a b)
             codes;
           ignore !acc))
  in
  let float_mac =
    let xs = Array.init 4096 (fun i -> float_of_int i *. 0.01) in
    Test.make ~name:"float-mac-4096"
      (Staged.stage (fun () ->
           let acc = ref 0. in
           Array.iter (fun x -> acc := !acc +. (x *. 1.0001)) xs;
           ignore !acc))
  in
  let input, filter, _, _ = conv_inputs () in
  let conv_float =
    Test.make ~name:"conv-float-gemm"
      (Staged.stage (fun () ->
           ignore
             (Ax_nn.Conv_float.gemm ~input ~filter ~spec:Conv_spec.default ())))
  in
  let im2col =
    let plan =
      Ax_nn.Im2col.make (Tensor.shape input) ~kh:3 ~kw:3
        ~spec:Conv_spec.default
    in
    let coeffs =
      Ax_quant.Quantization.compute_coeffs Ax_arith.Signedness.Unsigned
        ~rmin:(-1.) ~rmax:1.
    in
    Test.make ~name:"im2col-codes"
      (Staged.stage (fun () ->
           ignore
             (Ax_nn.Im2col.to_codes plan input ~coeffs
                ~round_mode:Ax_quant.Round.Nearest_even
                ~signedness:Ax_arith.Signedness.Unsigned)))
  in
  [
    lut_lookup; float_mac; conv_float; im2col;
    axconv_test ~name:"axconv-gemm" "mul8u_trunc8" `Gemm;
    axconv_test ~name:"axconv-direct" "mul8u_trunc8" `Direct;
  ]

let run_bechamel ~name tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name ~fmt:"%s/%s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (key, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        if ns > 1e6 then
          Format.printf "  %-34s %10.3f ms/run@." key (ns /. 1e6)
        else if ns > 1e3 then
          Format.printf "  %-34s %10.3f us/run@." key (ns /. 1e3)
        else Format.printf "  %-34s %10.1f ns/run@." key ns
      | Some _ | None -> Format.printf "  %-34s (no estimate)@." key)
    (List.sort compare rows)

let run_micro () =
  section "Kernel micro-benchmarks (Bechamel, monotonic clock)";
  run_bechamel ~name:"micro" (micro_tests ())

(* ------------------------------------------------------------------ *)
(* E5: LUT-content independence                                        *)
(* ------------------------------------------------------------------ *)

let run_lut_independence () =
  section
    "E5: \"The content of the LUT does not have any impact on the execution time\"";
  let tests =
    List.map
      (fun m -> axconv_test ~name:("axconv-" ^ m) m `Gemm)
      [ "mul8u_exact"; "mul8u_trunc8"; "mul8u_mitchell"; "mul8u_kulkarni" ]
  in
  run_bechamel ~name:"lut-independence" tests;
  Format.printf
    "@.identical within noise = the claim holds: time depends on geometry,@.";
  Format.printf "not on which truth table the texture memory holds.@."

(* ------------------------------------------------------------------ *)
(* A1: texture-cache ablation                                          *)
(* ------------------------------------------------------------------ *)

let run_cache_ablation () =
  section "A1: texture-cache geometry vs LUT hit rate (ResNet-20 codes)";
  let graph = Resnet.build ~depth:20 () in
  let sample = (Cifar.generate ~n:2 ()).Cifar.images in
  let base = Device.gtx_1080 in
  Format.printf "%-14s %-8s %-6s %10s %16s@." "cache" "line" "ways"
    "hit rate" "LUT time (10k)";
  let workloads =
    Cost.workloads_of_graph graph
      ~input:(Resnet.input_shape ~batch:1)
      ~images:10_000
  in
  List.iter
    (fun (size_kb, line, ways) ->
      let device =
        {
          base with
          Device.tex_cache_bytes = size_kb * 1024;
          tex_cache_line_bytes = line;
          tex_cache_ways = ways;
        }
      in
      let rate = Experiments.measured_lut_hit_rate ~device ~graph ~sample () in
      let phases =
        Cost.approx_network device ~lut_hit_rate:rate ~chunk_size:250
          workloads
      in
      Format.printf "%10d kB %5d B %6d %9.1f%% %13.2f s@." size_kb line ways
        (100. *. rate) phases.Cost.lut_s)
    [
      (0, 32, 1); (2, 32, 4); (8, 32, 4); (24, 32, 4); (48, 32, 4);
      (48, 64, 4); (48, 32, 8); (128, 32, 4); (256, 32, 4);
    ];
  Format.printf
    "@.0 kB = no texture cache: every fetch pays the miss penalty — the@.";
  Format.printf
    "paper's motivation for routing the LUT through texture memory.@."

(* ------------------------------------------------------------------ *)
(* A2: chunk-size ablation                                             *)
(* ------------------------------------------------------------------ *)

let run_chunk_ablation () =
  section "A2: Algorithm 1 chunk size (ResNet-20, measured CPU + model)";
  let graph = Resnet.build ~depth:20 () in
  let images = max 4 images_measured in
  let data = (Cifar.generate ~n:images ()).Cifar.images in
  let workloads =
    Cost.workloads_of_graph graph
      ~input:(Resnet.input_shape ~batch:1)
      ~images:10_000
  in
  Format.printf "%10s %16s %16s %18s@." "chunk" "cpu-gemm (meas.)"
    "gpu model" "peak patch bytes";
  List.iter
    (fun chunk_size ->
      let approx =
        Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8"
          ~chunk_size graph
      in
      let start = Unix.gettimeofday () in
      ignore
        (Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_gemm approx data);
      let measured = Unix.gettimeofday () -. start in
      let modelled =
        Cost.total (Cost.approx_network Device.gtx_1080 ~chunk_size workloads)
      in
      (* Largest per-chunk patch matrix across layers. *)
      let peak_bytes =
        List.fold_left
          (fun acc w ->
            max acc (min chunk_size 10_000 * w.Cost.rows_per_image * w.Cost.taps))
          0 workloads
      in
      Format.printf "%10d %14.2f s %14.2f s %15.1f MB@." chunk_size measured
        modelled
        (float_of_int peak_bytes /. 1e6))
    [ 1; 25; 125; 250; 500; 1000 ];
  Format.printf
    "@.results are bit-identical across chunk sizes (asserted in the test@.";
  Format.printf
    "suite); chunking trades patch-matrix memory against launch overhead.@."

(* ------------------------------------------------------------------ *)
(* Extension: per-layer timeline                                       *)
(* ------------------------------------------------------------------ *)

let run_per_layer () =
  section "Extension: per-layer modelled time (ResNet-8, 10k images)";
  let graph = Resnet.build ~depth:8 () in
  let workloads =
    Cost.workloads_of_graph graph
      ~input:(Resnet.input_shape ~batch:1)
      ~images:10_000
  in
  Format.printf "%-24s %10s %10s %10s %10s@." "layer" "quant" "LUT" "rest"
    "total";
  List.iter
    (fun (label, p) ->
      Format.printf "%-24s %8.3f s %8.3f s %8.3f s %8.3f s@." label
        p.Cost.quantization_s p.Cost.lut_s p.Cost.other_s (Cost.total p))
    (Cost.per_layer Device.gtx_1080 ~chunk_size:250 workloads);
  Format.printf
    "@.early layers pay in quantization traffic (large activations),@.";
  Format.printf "late layers in LUT fetches (more channels per position).@."

(* ------------------------------------------------------------------ *)
(* Extension: round-mode ablation                                      *)
(* ------------------------------------------------------------------ *)

let run_round_modes () =
  section "Extension: rounding mode of the quantizer (exact LUT)";
  let input, filter, input_range, filter_range = conv_inputs () in
  let float_out =
    Ax_nn.Conv_float.gemm ~input ~filter ~spec:Conv_spec.default ()
  in
  let lut = Registry.lut (Registry.find_exn "mul8s_exact") in
  Format.printf "%-16s %18s@." "round mode" "max |err| vs float";
  List.iter
    (fun round_mode ->
      let out =
        Axconv.conv
          ~config:(Axconv.make_config ~round_mode lut)
          ~input ~input_range ~filter ~filter_range ~spec:Conv_spec.default
          ()
      in
      Format.printf "%-16s %18.4f@."
        (Ax_quant.Round.to_string round_mode)
        (Tensor.max_abs_diff float_out out))
    Ax_quant.Round.[ Nearest_even; Nearest_away; Toward_zero; Stochastic ];
  Format.printf
    "@.the paper's \"requested round mode\" input: nearest flavours tie,@.";
  Format.printf "truncation costs roughly 2x the quantization noise.@."

(* ------------------------------------------------------------------ *)
(* Extension: other workload families                                  *)
(* ------------------------------------------------------------------ *)

let run_workloads () =
  section
    "Extension: other workload families (GPU modelled, 10k images)";
  Format.printf "%-22s %10s %14s %14s@." "model" "MACs/img" "GPU accurate"
    "GPU approximate";
  let entry ~label ~graph ~input =
    let macs = Ax_nn.Graph.total_macs graph ~input in
    let accurate, _ =
      Tfapprox.Emulator.estimate_gpu_time ~graph ~input ~images:10_000 ()
    in
    let approx_graph =
      Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" graph
    in
    let approx, _ =
      Tfapprox.Emulator.estimate_gpu_time ~graph:approx_graph ~input
        ~images:10_000 ()
    in
    let seconds = function
      | `Accurate p | `Approximate p -> Cost.total p
    in
    Format.printf "%-22s %9.1fM %12.2f s %12.2f s@." label
      (float_of_int macs /. 1e6)
      (seconds accurate) (seconds approx)
  in
  entry ~label:"ResNet-20"
    ~graph:(Resnet.build ~depth:20 ())
    ~input:(Resnet.input_shape ~batch:1);
  entry ~label:"MobileNet (w16, b4)"
    ~graph:(Ax_models.Mobilenet.build ())
    ~input:(Ax_models.Mobilenet.input_shape ~batch:1);
  entry ~label:"LeNet (28x28x1)"
    ~graph:(Ax_models.Lenet.build ())
    ~input:(Ax_models.Lenet.input_shape ~batch:1);
  Format.printf
    "@.depthwise-separable and 5x5/maxpool networks run through the same@.";
  Format.printf "AxConv2D / AxDepthwiseConv2D pipeline and cost model.@."

(* ------------------------------------------------------------------ *)
(* A6: accumulator-width ablation                                      *)
(* ------------------------------------------------------------------ *)

let run_accumulator_ablation () =
  section
    "A6: accumulator width (paper: 32-bit unit; narrower saturating/wrapping)";
  let input, filter, input_range, filter_range = conv_inputs () in
  let lut = Registry.lut (Registry.find_exn "mul8s_exact") in
  let reference =
    Axconv.conv
      ~config:(Axconv.make_config lut)
      ~input ~input_range ~filter ~filter_range ~spec:Conv_spec.default ()
  in
  Format.printf "%-10s %18s %18s@." "width" "max |err| (sat)" "max |err| (wrap)";
  List.iter
    (fun width ->
      let err accumulator =
        let out =
          Axconv.conv
            ~config:(Axconv.make_config ~accumulator lut)
            ~input ~input_range ~filter ~filter_range
            ~spec:Conv_spec.default ()
        in
        Tensor.max_abs_diff reference out
      in
      Format.printf "%-10d %18.4f %18.4f@." width
        (err (Ax_nn.Accumulator.Saturating width))
        (err (Ax_nn.Accumulator.Wrapping width)))
    [ 10; 12; 14; 16; 20; 24; 32 ];
  Format.printf
    "@.32-bit never overflows at these layer sizes (the paper's design@.";
  Format.printf
    "point); saturation degrades gracefully, wrap-around does not.@."

(* ------------------------------------------------------------------ *)
(* Trace mode: observability dump                                      *)
(* ------------------------------------------------------------------ *)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let run_trace () =
  section "Trace: one instrumented ResNet-8 inference (Chrome trace + metrics)";
  let graph = Resnet.build ~depth:8 () in
  let approx =
    Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" graph
  in
  let data = (Cifar.generate ~n:images_measured ()).Cifar.images in
  let tracer = Ax_obs.Trace.create () in
  let profile = Ax_nn.Profile.create ~trace:tracer () in
  ignore
    (Tfapprox.Emulator.run ~profile ~backend:Tfapprox.Emulator.Cpu_gemm approx
       data);
  let metrics = Ax_nn.Profile.metrics profile in
  ignore
    (Experiments.measured_lut_hit_rate ~metrics ~device:Device.gtx_1080
       ~graph:approx ~sample:data ());
  let trace_path = "tfapprox_trace_resnet8.json" in
  let metrics_path = "tfapprox_metrics_resnet8.json" in
  write_file trace_path (Ax_obs.Trace.chrome_json_string tracer);
  write_file metrics_path
    (Ax_obs.Json.to_string
       (Ax_obs.Metrics.to_json (Ax_obs.Metrics.snapshot metrics)));
  Format.printf "wrote %s (%d spans) and %s@." trace_path
    (Ax_obs.Trace.span_count tracer)
    metrics_path;
  Format.printf "phases: %a@." Ax_nn.Profile.pp_breakdown
    (Ax_nn.Profile.breakdown profile);
  Format.printf "lut lookups: %d, macs: %d@."
    (Ax_nn.Profile.lut_lookups profile)
    (Ax_nn.Profile.macs profile)

(* ------------------------------------------------------------------ *)
(* Pool: sharded emulator scaling                                      *)
(* ------------------------------------------------------------------ *)

let run_pool () =
  section "Pool: per-image sharded emulation, domains 1 vs N (ResNet-8)";
  let images = max images_measured 4 in
  let graph = Resnet.build ~depth:8 () in
  let data = (Cifar.generate ~n:images ()).Cifar.images in
  let time_run ~domains =
    let approx =
      Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" ~domains
        graph
    in
    let backend = Tfapprox.Emulator.Cpu_gemm in
    (* Warm-up builds (or grows) the pool and touches every LUT page. *)
    ignore (Tfapprox.Emulator.run ~domains ~backend approx data);
    let best = ref infinity and out = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let o = Tfapprox.Emulator.run ~domains ~backend approx data in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some o
    done;
    (!best, Option.get !out)
  in
  Format.printf "host: %d recommended domain(s); %d images per run@.@."
    (Domain.recommended_domain_count ())
    images;
  let base_t, base_out = time_run ~domains:1 in
  Format.printf "%-8s %12s %12s %9s %10s@." "domains" "best time" "images/s"
    "speedup" "bitwise";
  List.iter
    (fun d ->
      let t, out = time_run ~domains:d in
      let identical = Tensor.max_abs_diff base_out out = 0. in
      Format.printf "%-8d %10.1f ms %12.1f %8.2fx %10s@." d (1000. *. t)
        (float_of_int images /. t)
        (base_t /. t)
        (if identical then "ok" else "DIFFERS"))
    [ 1; 2; 4 ];
  let s = Ax_pool.Pool.stats (Ax_pool.Pool.default ()) in
  Format.printf
    "@.pool: %d domain(s), %d parallel call(s), %d inline call(s), %d \
     task(s), %.1f ms busy@."
    (Ax_pool.Pool.default_size ())
    s.Ax_pool.Pool.parallel_calls s.Ax_pool.Pool.inline_calls
    s.Ax_pool.Pool.tasks
    (1000. *. s.Ax_pool.Pool.busy_seconds);
  (* Where does the d4 regression live?  One instrumented domains:4 run
     with per-domain span attribution: busy/idle fraction per slot,
     the imbalance gauge, per-image latency quantiles, and a Chrome
     trace with one tid row per domain. *)
  Format.printf "@.-- instrumented domains:4 run --@.";
  let pool = Ax_pool.Pool.ensure ~domains:4 in
  let before = Ax_pool.Pool.stats pool in
  let tracer = Ax_obs.Trace.create () in
  let profile = Ax_nn.Profile.create ~trace:tracer () in
  let approx =
    Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" ~domains:4
      graph
  in
  ignore
    (Tfapprox.Emulator.run ~profile ~domains:4
       ~backend:Tfapprox.Emulator.Cpu_gemm approx data);
  let after = Ax_pool.Pool.stats pool in
  let delta =
    {
      after with
      Ax_pool.Pool.fanout_wall_seconds =
        after.Ax_pool.Pool.fanout_wall_seconds
        -. before.Ax_pool.Pool.fanout_wall_seconds;
      per_domain_busy_seconds =
        Array.mapi
          (fun i b -> b -. before.Ax_pool.Pool.per_domain_busy_seconds.(i))
          after.Ax_pool.Pool.per_domain_busy_seconds;
    }
  in
  let wall = delta.Ax_pool.Pool.fanout_wall_seconds in
  Format.printf "%-8s %12s %8s %8s@." "domain" "busy" "busy%" "idle%";
  Array.iteri
    (fun i busy ->
      let frac = if wall > 0. then Float.min 1. (busy /. wall) else 0. in
      Format.printf "%-8d %10.1f ms %7.1f%% %7.1f%%@." i (1000. *. busy)
        (100. *. frac)
        (100. *. (1. -. frac)))
    delta.Ax_pool.Pool.per_domain_busy_seconds;
  Format.printf "imbalance (1 - mean/max busy): %.3f@."
    (Ax_pool.Pool.imbalance delta);
  let snap = Ax_obs.Metrics.snapshot (Ax_nn.Profile.metrics profile) in
  (match Ax_obs.Metrics.find_histogram snap "emulator_image_seconds" with
  | Some h ->
    Format.printf
      "per-image latency: n=%d p50=%.1f ms p90=%.1f ms p99=%.1f ms@."
      h.Ax_obs.Metrics.count
      (1000. *. h.Ax_obs.Metrics.p50)
      (1000. *. h.Ax_obs.Metrics.p90)
      (1000. *. h.Ax_obs.Metrics.p99)
  | None -> ());
  let trace_path = "tfapprox_trace_pool.json" in
  write_file trace_path (Ax_obs.Trace.chrome_json_string tracer);
  let tids =
    List.sort_uniq compare
      (List.map
         (fun sp -> sp.Ax_obs.Trace.tid)
         (Ax_obs.Trace.spans tracer))
  in
  Format.printf "wrote %s (%d spans on %d distinct tid rows)@." trace_path
    (Ax_obs.Trace.span_count tracer)
    (List.length tids)

(* ------------------------------------------------------------------ *)
(* GEMM: hot-path throughput + allocation discipline                   *)
(* ------------------------------------------------------------------ *)

(* Documented gate: steady-state per-chunk allocation of the AxConv2D
   GEMM path, in heap words (Gc.allocated_bytes delta, which covers
   both the minor heap and buffers large enough to go straight to the
   major heap).  The scratch arena owns the mp/sp/acc buffers, so a
   warmed-up chunk only allocates bookkeeping (a tuple, a couple of
   closures) — 512 words is two orders of magnitude of headroom over
   that, while any reintroduced per-chunk buffer (the smallest patch
   matrix is tens of kilobytes) blows straight past it.  CI runs this
   section in smoke mode and fails the leg if the gate trips. *)
let alloc_words_per_chunk_threshold = 512

let run_gemm () =
  section "GEMM: ApproxGEMM hot path (ResNet-8 cpu-gemm + allocation gate)";
  let images = max images_measured 4 in
  let graph = Resnet.build ~depth:8 () in
  let data = (Cifar.generate ~n:images ()).Cifar.images in
  (* Throughput: un-sharded run; [domains] is the row-level split inside
     the GEMM (config.domains), the axis the tiled kernel parallelizes. *)
  let time_run ~domains =
    let approx =
      Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" ~domains
        graph
    in
    let backend = Tfapprox.Emulator.Cpu_gemm in
    ignore (Tfapprox.Emulator.run ~backend approx data);
    let best = ref infinity and out = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let o = Tfapprox.Emulator.run ~backend approx data in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some o
    done;
    (!best, Option.get !out)
  in
  let t1, out1 = time_run ~domains:1 in
  let t4, out4 = time_run ~domains:4 in
  let identical = Tensor.max_abs_diff out1 out4 = 0. in
  Format.printf "%-8s %12s %12s %10s@." "domains" "best time" "images/s"
    "bitwise";
  List.iter
    (fun (d, t) ->
      Format.printf "%-8d %10.1f ms %12.2f %10s@." d (1000. *. t)
        (float_of_int images /. t)
        (if identical then "ok" else "DIFFERS"))
    [ (1, t1); (4, t4) ];
  (* Micro: one small conv (16x16x8 -> 16, 3x3 Same), ns per LUT MAC.
     Timed twice — raw table (the gated default) and the compressed
     decode — so the cost of each path stays on record. *)
  let input, filter, input_range, filter_range = conv_inputs () in
  let micro_time ~compress =
    let config =
      Axconv.make_config ~compress
        (Registry.lut (Registry.find_exn "mul8u_trunc8"))
    in
    let conv () =
      Axconv.conv ~config ~input ~input_range ~filter ~filter_range
        ~spec:Conv_spec.default ()
    in
    ignore (conv ());
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (conv ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let micro_best = ref (micro_time ~compress:false) in
  let micro_macs = 16 * 16 * 16 * 72 in
  let ns_per_mac = !micro_best *. 1e9 /. float_of_int micro_macs in
  let ns_per_mac_compressed =
    micro_time ~compress:true *. 1e9 /. float_of_int micro_macs
  in
  Format.printf
    "@.micro: %.3f ms/conv, %.2f ns/MAC raw, %.2f ns/MAC compressed (%d LUT \
     MACs)@."
    (1000. *. !micro_best) ns_per_mac ns_per_mac_compressed micro_macs;
  (* What the kernel actually read instead of the 128 kB table. *)
  let comp =
    Ax_quant.Lut_compressed.of_lut
      (Registry.lut (Registry.find_exn "mul8u_trunc8"))
  in
  let comp_mode = Ax_quant.Lut_compressed.mode_name comp in
  let comp_bytes = Ax_quant.Lut_compressed.bytes comp in
  let comp_ratio = Ax_quant.Lut_compressed.ratio comp in
  Format.printf "lut: %s, %d B working set (%.1fx compression)@." comp_mode
    comp_bytes comp_ratio;
  (* Domains-scaling gate: with chunk-level dynamic claiming the d4 run
     must not be slower than d1.  On single-core hosts (CI containers,
     this dev box) there is nothing to scale over, so the gate degrades
     to a logged warning instead of a hard failure. *)
  let cores = Domain.recommended_domain_count () in
  let scaling_skipped = cores < 2 in
  let scaling_ok = scaling_skipped || t4 <= t1 in
  if scaling_skipped then
    Format.printf
      "scaling gate: SKIPPED (recommended_domain_count %d < 2 — nothing to \
       scale over)@."
      cores
  else
    Format.printf "scaling gate: d4 %.2f img/s vs d1 %.2f img/s: %s@."
      (float_of_int images /. t4)
      (float_of_int images /. t1)
      (if scaling_ok then "ok" else "FAIL");
  (* Allocation gate: the same conv over 12 images at chunk_size:1 (12
     chunks) vs over 1 image (1 chunk).  The per-conv costs (filter
     quantization, output tensor, dequant constants) cancel in the
     subtraction, leaving 11 steady-state chunks' worth of allocation. *)
  let big = Tensor.create (Shape.make ~n:12 ~h:16 ~w:16 ~c:8) in
  Tensor.fill_uniform ~lo:(-1.) ~hi:1. (Rng.create 5) big;
  let small = Tensor.slice_batch big ~start:0 ~count:1 in
  let chunky =
    Axconv.make_config ~chunk_size:1
      (Registry.lut (Registry.find_exn "mul8u_trunc8"))
  in
  let conv_alloc input =
    let range = Ax_quant.Range.of_tensor input in
    ignore
      (Axconv.conv ~config:chunky ~input ~input_range:range ~filter
         ~filter_range ~spec:Conv_spec.default ());
    (* [Gc.allocated_bytes] only advances at minor collections, so flush
       before each read or the delta is quantized to whole minor heaps. *)
    Gc.minor ();
    let before = Gc.allocated_bytes () in
    ignore
      (Axconv.conv ~config:chunky ~input ~input_range:range ~filter
         ~filter_range ~spec:Conv_spec.default ());
    Gc.minor ();
    Gc.allocated_bytes () -. before
  in
  let a1 = conv_alloc small in
  let a12 = conv_alloc big in
  let word = float_of_int (Sys.word_size / 8) in
  let per_chunk_words = (a12 -. a1) /. 11. /. word in
  let gate_ok = per_chunk_words <= float_of_int alloc_words_per_chunk_threshold in
  Format.printf
    "alloc: %.0f words/chunk steady-state (threshold %d): %s@."
    per_chunk_words alloc_words_per_chunk_threshold
    (if gate_ok then "ok" else "FAIL");
  (* Observability overhead gate: the same ResNet-8 run with a full
     profile (phases, histograms, spans) attached vs instrumentation
     compiled in but disabled (no profile).  Best-of-N per side inside
     each attempt, minimum overhead across attempts — both minimize the
     influence of scheduler noise, which easily exceeds the 2% budget on
     a busy CI host; a real per-event cost shows up in every attempt. *)
  let overhead_threshold_pct =
    match Sys.getenv_opt "TFAPPROX_OBS_OVERHEAD_PCT" with
    | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0. -> v
      | Some _ | None -> 2.0)
    | None -> 2.0
  in
  let approx_plain =
    Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" graph
  in
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let run_disabled () =
    ignore
      (Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_gemm approx_plain
         data)
  in
  let run_enabled () =
    let profile =
      Ax_nn.Profile.create ~trace:(Ax_obs.Trace.create ()) ()
    in
    ignore
      (Tfapprox.Emulator.run ~profile ~backend:Tfapprox.Emulator.Cpu_gemm
         approx_plain data)
  in
  run_disabled ();
  run_enabled ();
  let overhead_pct = ref infinity in
  for _ = 1 to 3 do
    let off = best_of 3 run_disabled in
    let on = best_of 3 run_enabled in
    let pct = Float.max 0. (100. *. ((on /. off) -. 1.)) in
    if pct < !overhead_pct then overhead_pct := pct
  done;
  let obs_ok = !overhead_pct < overhead_threshold_pct in
  Format.printf
    "obs overhead: %.2f%% enabled-vs-disabled (threshold %.1f%%): %s@."
    !overhead_pct overhead_threshold_pct
    (if obs_ok then "ok" else "FAIL");
  (* Checked-wrapper overhead gate: the pool and daemon route every
     lock/condvar/atomic through the Ax_conc shims, whose off-mode path
     adds one atomic flag load per operation.  That cost is far below
     run-to-run noise on the full inference, so a direct off-vs-raw
     macro timing cannot resolve it; instead the gate (a) counts the
     workload's actual shim operations by running the same inference
     once under record mode, (b) microbenchmarks the per-operation
     passthrough delta (shim lock/unlock in off mode vs a raw Stdlib
     mutex), and (c) gates their product against the off-mode run time.
     Findings from the counting run are discarded ([reset], no
     [collect]) — flipping modes while pool workers idle inside an
     off-mode wait can produce bookkeeping artefacts, which is fine
     here because only the op count is of interest. *)
  let conc_threshold_pct =
    match Sys.getenv_opt "TFAPPROX_CONC_OVERHEAD_PCT" with
    | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v > 0. -> v
      | Some _ | None -> 2.0)
    | None -> 2.0
  in
  (* The 4-domain GEMM split is the path that actually goes through the
     pool's checked locks; the 1-domain run stays inline and performs
     no shim operations at all. *)
  let approx_pool =
    Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" ~domains:4
      graph
  in
  let run_pool () =
    ignore
      (Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_gemm approx_pool
         data)
  in
  let saved_mode = Ax_conc.Conc.mode () in
  Ax_conc.Conc.set_mode Ax_conc.Conc.Off;
  let t_off = best_of 3 run_pool in
  Ax_conc.Conc.reset ();
  Ax_conc.Conc.set_mode Ax_conc.Conc.Record;
  run_pool ();
  let conc_ops = Ax_conc.Conc.ops () in
  Ax_conc.Conc.set_mode Ax_conc.Conc.Off;
  Ax_conc.Conc.reset ();
  let shim = Ax_conc.Mutex.create ~name:"bench.gate" () in
  let raw = Stdlib.Mutex.create () in
  let iters = 200_000 in
  let t_shim =
    best_of 3 (fun () ->
        for _ = 1 to iters do
          Ax_conc.Mutex.lock shim;
          Ax_conc.Mutex.unlock shim
        done)
  in
  let t_raw =
    best_of 3 (fun () ->
        for _ = 1 to iters do
          Stdlib.Mutex.lock raw;
          Stdlib.Mutex.unlock raw
        done)
  in
  Ax_conc.Conc.set_mode saved_mode;
  (* lock + unlock are two shim operations per iteration *)
  let per_op_s =
    Float.max 0. ((t_shim -. t_raw) /. float_of_int (2 * iters))
  in
  let conc_pct = 100. *. (float_of_int conc_ops *. per_op_s /. t_off) in
  let conc_ok = conc_pct < conc_threshold_pct in
  Format.printf
    "conc overhead: %d shim ops x %.1f ns passthrough = %.4f%% of the \
     off-mode run (threshold %.1f%%): %s@."
    conc_ops (per_op_s *. 1e9) conc_pct conc_threshold_pct
    (if conc_ok then "ok" else "FAIL");
  let open Ax_obs.Json in
  let row d t =
    Obj
      [
        ("domains", Int d);
        ("seconds", Float t);
        ("images_per_sec", Float (float_of_int images /. t));
      ]
  in
  write_file "BENCH_gemm.json"
    (to_string
       (Obj
          [
            ("bench", String "gemm");
            ("multiplier", String "mul8u_trunc8");
            ("network", String "resnet-8");
            ("images", Int images);
            ("throughput", List [ row 1 t1; row 4 t4 ]);
            ("bitwise_domains_1_vs_4", Bool identical);
            ( "lut_compression",
              Obj
                [
                  ("multiplier", String "mul8u_trunc8");
                  ("mode", String comp_mode);
                  ("bytes", Int comp_bytes);
                  ("ratio", Float comp_ratio);
                ] );
            ( "scaling_gate",
              Obj
                [
                  ("recommended_domain_count", Int cores);
                  ("skipped", Bool scaling_skipped);
                  ("pass", Bool scaling_ok);
                ] );
            ( "micro",
              Obj
                [
                  ("macs", Int micro_macs);
                  ("seconds", Float !micro_best);
                  ("ns_per_mac_compressed", Float ns_per_mac_compressed);
                  ("ns_per_mac", Float ns_per_mac);
                ] );
            ( "alloc_gate",
              Obj
                [
                  ("steady_chunks", Int 11);
                  ("per_chunk_words", Float per_chunk_words);
                  ("threshold_words", Int alloc_words_per_chunk_threshold);
                  ("pass", Bool gate_ok);
                ] );
            ( "obs_overhead",
              Obj
                [
                  ("percent", Float !overhead_pct);
                  ("threshold_percent", Float overhead_threshold_pct);
                  ("pass", Bool obs_ok);
                ] );
            ( "conc_overhead",
              Obj
                [
                  ("percent", Float conc_pct);
                  ("threshold_percent", Float conc_threshold_pct);
                  ("pass", Bool conc_ok);
                ] );
          ]));
  Format.printf "wrote BENCH_gemm.json@.";
  (* Append this run to the benchmark trajectory so [bench -- history]
     can gate future runs against the best values ever reached. *)
  let history_path =
    Option.value ~default:"BENCH_history.jsonl"
      (Sys.getenv_opt "TFAPPROX_BENCH_HISTORY")
  in
  Tfapprox.Perf.append_history history_path
    {
      Tfapprox.Perf.label = Tfapprox.Perf.utc_label ();
      bench = Tfapprox.Perf.default_bench;
      images;
      throughput =
        [
          { Tfapprox.Perf.domains = 1; seconds = t1;
            images_per_sec = float_of_int images /. t1 };
          { Tfapprox.Perf.domains = 4; seconds = t4;
            images_per_sec = float_of_int images /. t4 };
        ];
      ns_per_mac = Some ns_per_mac;
      lut_compression =
        Some
          {
            Tfapprox.Perf.multiplier = "mul8u_trunc8";
            comp_mode;
            comp_bytes;
            comp_ratio;
          };
    };
  Format.printf "appended to %s@." history_path;
  if not gate_ok then begin
    Format.eprintf
      "gemm allocation gate FAILED: %.0f words/chunk > %d (see DESIGN.md)@."
      per_chunk_words alloc_words_per_chunk_threshold;
    exit 1
  end;
  if not obs_ok then begin
    Format.eprintf
      "observability overhead gate FAILED: %.2f%% > %.1f%% (see DESIGN.md \
       \xc2\xa75d)@."
      !overhead_pct overhead_threshold_pct;
    exit 1
  end;
  if not conc_ok then begin
    Format.eprintf
      "checked-wrapper overhead gate FAILED: %.2f%% > %.1f%% (see DESIGN.md \
       \xc2\xa75g)@."
      conc_pct conc_threshold_pct;
    exit 1
  end;
  if not scaling_ok then begin
    Format.eprintf
      "domains scaling gate FAILED: d4 %.2f img/s < d1 %.2f img/s@."
      (float_of_int images /. t4)
      (float_of_int images /. t1);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* History: benchmark trajectory + regression gate                     *)
(* ------------------------------------------------------------------ *)

let run_history () =
  section "History: benchmark trajectory & regression gate";
  let history_path =
    Option.value ~default:"BENCH_history.jsonl"
      (Sys.getenv_opt "TFAPPROX_BENCH_HISTORY")
  in
  let current_path = "BENCH_gemm.json" in
  if not (Sys.file_exists current_path) then begin
    Format.eprintf "no %s — run `bench -- gemm` first@." current_path;
    exit 1
  end;
  let current = Tfapprox.Perf.of_file current_path in
  let history = Tfapprox.Perf.load_history history_path in
  if history = [] then
    Format.printf "history %s is empty — recording only, nothing to gate@."
      history_path
  else begin
    Format.printf "trajectory (%s, %d record(s)):@.@." history_path
      (List.length history);
    Format.printf "%a@." Tfapprox.Perf.pp_history history
  end;
  let threshold = Tfapprox.Perf.threshold_from_env () in
  let verdicts = Tfapprox.Perf.gate ~threshold ~history ~current in
  if verdicts <> [] then begin
    Format.printf "current %s vs best of history (threshold %.0f%%):@.@."
      current_path (100. *. threshold);
    Format.printf "%a@." Tfapprox.Perf.pp_verdicts verdicts
  end;
  if Tfapprox.Perf.regressed verdicts then begin
    Format.eprintf "perf regression gate FAILED (threshold %.0f%%)@."
      (100. *. threshold);
    exit 1
  end
  else Format.printf "perf regression gate: ok@."

(* ------------------------------------------------------------------ *)
(* Resilience: fault-injection sensitivity                             *)
(* ------------------------------------------------------------------ *)

let run_resilience () =
  section
    "Resilience: LUT-bit sensitivity (ResNet-8, seeded SEU campaign)";
  let images = max images_measured 32 in
  let graph = Resnet.build ~depth:8 () in
  (* Random weights classify at chance, which would flatten every
     sensitivity row to zero — a short fine-tune on the synthetic
     training distribution lifts the baseline well above chance so
     degradation has room to show. *)
  let train_set = Cifar.normalize (Cifar.generate ~seed:1 ~n:96 ()) in
  let config =
    {
      Ax_train.Trainer.default_config with
      Ax_train.Trainer.epochs = 15;
      learning_rate = 0.02;
      batch_size = 12;
    }
  in
  let t0 = Unix.gettimeofday () in
  let history = Ax_train.Trainer.train config graph train_set in
  let dataset = Cifar.normalize (Cifar.generate ~seed:2 ~n:images ()) in
  Format.printf
    "fine-tune: %.1f s; best train accuracy %.1f%%; held-out float accuracy \
     %.1f%%@.@."
    (Unix.gettimeofday () -. t0)
    (100.
    *. Array.fold_left Float.max 0. history.Ax_train.Trainer.epoch_accuracies)
    (100. *. Ax_train.Trainer.evaluate graph dataset);
  let graph =
    Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" graph
  in
  let trials =
    Ax_resilience.Campaign.zero_fault_trial
    :: Ax_resilience.Campaign.lut_bit_trials ~seed:42 ~sites:4096
         ~bits:[ 0; 2; 4; 6; 8; 10; 12; 14; 15 ] ()
  in
  let metrics = Ax_obs.Metrics.create () in
  let report =
    Ax_resilience.Campaign.run ~metrics
      { Ax_resilience.Campaign.graph; dataset;
        backend = Tfapprox.Emulator.Cpu_gemm }
      ~trials
  in
  Format.printf "%a@." Ax_resilience.Campaign.pp report;
  Format.printf
    "@.4096 upset truth-table entries per trial; high product bits (b14, the@.";
  Format.printf
    "unsigned MSB b15) should dominate the drop, low bits vanish in the@.";
  Format.printf "approximation noise the multiplier already has.@.";
  Format.printf "@.-- csv --@.%s" (Ax_resilience.Campaign.csv report)

(* ------------------------------------------------------------------ *)
(* Serve: daemon throughput + torture                                  *)
(* ------------------------------------------------------------------ *)

module Server = Ax_serve.Server
module Store = Ax_serve.Store
module Sclient = Ax_serve.Client
module Protocol = Ax_serve.Protocol
module Admission = Ax_serve.Admission

let temp_socket tag =
  let path = Filename.temp_file ("tfapprox_" ^ tag) ".sock" in
  Sys.remove path;
  path

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* Sustained load + exact client-side latency quantiles: [threads]
   concurrent clients, each issuing [per_thread] single-image requests
   back to back, every response checked bit-identical against a local
   one-shot [Emulator.predictions ~domains:1] of the same tensor. *)
let serve_throughput ~server ~address ~graph ~threads ~per_thread =
  let latencies = Array.make (threads * per_thread) 0. in
  let mismatches = Atomic.make 0 in
  let failures = Atomic.make 0 in
  (* Reference predictions are computed serially, BEFORE any load
     starts: the emulator is not reentrant across systhreads (scratch
     arenas are per-domain, and all these threads share the daemon's
     domain), so a worker computing its own [expected] would race the
     scheduler thread.  Real clients are separate processes and never
     hit this; the bench shares a process only for convenience. *)
  let inputs =
    Array.init threads (fun i ->
        let data = (Cifar.generate ~seed:(1000 + i) ~n:1 ()).Cifar.images in
        let expected =
          Tfapprox.Emulator.predictions ~verify:false ~domains:1 graph
            ~backend:Tfapprox.Emulator.Cpu_gemm data
        in
        (data, expected))
  in
  let worker i () =
    let data, expected = inputs.(i) in
    let c = Sclient.connect address in
    for j = 0 to per_thread - 1 do
      let t0 = Unix.gettimeofday () in
      (match Sclient.infer c ~id:((i * per_thread) + j) ~model:"resnet8" data with
      | Ok classes -> if classes <> expected then Atomic.incr mismatches
      | Error _ -> Atomic.incr failures);
      latencies.((i * per_thread) + j) <- Unix.gettimeofday () -. t0
    done;
    Sclient.close c
  in
  let t0 = Unix.gettimeofday () in
  let ts = List.init threads (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join ts;
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare latencies;
  let n = threads * per_thread in
  Format.printf
    "%d clients x %d requests: %.1f req/s sustained (%.2f s wall)@." threads
    per_thread
    (float_of_int n /. wall)
    wall;
  Format.printf "request latency: p50 %.1f ms  p99 %.1f ms  max %.1f ms@."
    (1000. *. percentile latencies 0.50)
    (1000. *. percentile latencies 0.99)
    (1000. *. latencies.(n - 1));
  let st = Admission.stats (Server.admission server) in
  Format.printf
    "admission: %d submitted, %d batches (%.2f jobs/batch), max depth %d@."
    st.Admission.submitted st.Admission.batches
    (if st.Admission.batches = 0 then 0.
     else float_of_int st.Admission.batched_jobs /. float_of_int st.Admission.batches)
    st.Admission.max_depth;
  (Atomic.get mismatches, Atomic.get failures)

(* Overload + corrupt artefacts + a garbage-spraying client, all at
   once, against a deliberately tiny queue.  The daemon must survive
   with bounded queue depth, typed rejections, and bit-identical
   answers for every request it accepted. *)
let serve_torture () =
  let dir = Filename.temp_file "tfapprox_torture" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let lut_path name =  Filename.concat dir name in
  (* two corrupt LUT artefacts: one repairable (spec names a registry
     multiplier to re-tabulate), one not *)
  let corrupt path =
    Ax_arith.Lut.save path
      (Tfapprox.Emulator.lut_of_multiplier "mul8u_trunc8");
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
    ignore (Unix.lseek fd 4096 Unix.SEEK_SET);
    ignore (Unix.write fd (Bytes.make 16 '\xff') 0 16);
    Unix.close fd
  in
  corrupt (lut_path "repairable.axlut");
  corrupt (lut_path "lost.axlut");
  let store =
    Store.load ~domains:1
      (List.map Store.parse_spec
         [
           "resnet8=resnet8+mul8u_trunc8";
           Printf.sprintf "repaired=resnet8+mul8u_trunc8@%s"
             (lut_path "repairable.axlut");
           Printf.sprintf "lost=resnet8@%s" (lut_path "lost.axlut");
         ])
  in
  let address = Server.Unix_sock (temp_socket "torture") in
  let capacity = 4 in
  let server =
    Server.start
      {
        (Server.default_config ~store ~address ()) with
        Server.queue_capacity = capacity;
        max_batch = 2;
        linger = 0.05;
      }
  in
  (* the one-shot reference for the good model *)
  let graph =
    match Store.find store "resnet8" with
    | Some { Store.status = Store.Ready r; _ } -> r.Store.graph
    | _ -> assert false
  in
  let data = (Cifar.generate ~seed:7 ~n:1 ()).Cifar.images in
  let expected =
    Tfapprox.Emulator.predictions ~verify:false ~domains:1 graph
      ~backend:Tfapprox.Emulator.Cpu_gemm data
  in
  (* 1. overload: pipeline 3x capacity requests in one burst inside the
     50 ms linger window, so the queue must fill and refuse *)
  let burst = 3 * capacity in
  let c = Sclient.connect address in
  let req_frame id =
    Protocol.frame
      (Protocol.encode_request
         (Protocol.Infer { id; model = "resnet8"; deadline_ms = None; input = data }))
  in
  for id = 0 to burst - 1 do
    Sclient.send_raw c (req_frame id)
  done;
  let accepted = ref 0 and overloaded = ref 0 and odd = ref 0 in
  for _ = 1 to burst do
    match Sclient.read_response c with
    | Ok (Protocol.Predictions { classes; _ }) ->
      incr accepted;
      if classes <> expected then begin
        Format.eprintf "torture: accepted request not bit-identical@.";
        exit 1
      end
    | Ok (Protocol.Error { code = Protocol.Overloaded; retry_after_ms; _ }) ->
      incr overloaded;
      if retry_after_ms <= 0 then begin
        Format.eprintf "torture: Overloaded without a retry hint@.";
        exit 1
      end
    | Ok _ | Error _ -> incr odd
  done;
  Sclient.close c;
  (* 2. concurrently: a garbage client, vanishing clients (EOF with
     requests still queued — the fd-recycling hazard: their pending
     deliveries must be dropped, never written into another client's
     stream) and requests against the degraded + repaired models *)
  let garbage_ok = ref false in
  let g =
    Thread.create
      (fun () ->
        let st = Random.State.make [| 0xbeef |] in
        for _ = 1 to 5 do
          let c = Sclient.connect address in
          Sclient.send_raw c
            (Bytes.init 256 (fun _ -> Char.chr (Random.State.int st 256)));
          (match Sclient.read_response c with _ -> () | exception _ -> ());
          Sclient.close c
        done;
        let c = Sclient.connect address in
        (match Sclient.ping c with Ok () -> garbage_ok := true | Error _ -> ());
        Sclient.close c)
      ()
  in
  let v =
    Thread.create
      (fun () ->
        for id = 0 to 7 do
          let c = Sclient.connect address in
          Sclient.send_raw c (req_frame (1000 + id));
          Sclient.close c
        done)
      ()
  in
  let c = Sclient.connect address in
  (* the vanishers above race these checks for the capacity-4 queue, so
     a typed [Overloaded] is a correct answer here — retry like a
     well-behaved client instead of calling it a failure *)
  let rec infer_admitted ?deadline_ms ~tries model =
    match Sclient.infer c ?deadline_ms ~model data with
    | Error (Sclient.Refused { code = Protocol.Overloaded; _ }) when tries > 0
      ->
      Thread.delay 0.02;
      infer_admitted ?deadline_ms ~tries:(tries - 1) model
    | r -> r
  in
  let unavailable_typed =
    match Sclient.infer c ~model:"lost" data with
    | Error (Sclient.Refused { code = Protocol.Model_unavailable; _ }) -> true
    | _ -> false
  in
  let repaired_ok =
    match infer_admitted ~tries:100 "repaired" with
    | Ok classes -> classes = expected
    | Error _ -> false
  in
  (* an expired deadline is answered typed, never scheduled *)
  let deadline_typed =
    match infer_admitted ~deadline_ms:0 ~tries:100 "resnet8" with
    | Error (Sclient.Refused { code = Protocol.Deadline_exceeded; _ }) -> true
    | Ok _ -> true (* scheduler won the race; acceptable, not a crash *)
    | Error _ -> false
  in
  Sclient.close c;
  Thread.join g;
  Thread.join v;
  (* every response after the vanishers must still be correct and bound
     to the right connection *)
  let post_vanish_ok =
    let c = Sclient.connect address in
    let r =
      match Sclient.infer c ~id:42 ~model:"resnet8" data with
      | Ok classes -> classes = expected
      | Error (Sclient.Refused { code = Protocol.Overloaded; _ }) -> true
      | Error _ -> false
    in
    Sclient.close c;
    r
  in
  let st = Admission.stats (Server.admission server) in
  Server.stop server;
  Format.printf
    "burst of %d vs capacity %d: %d accepted (all bit-identical), %d \
     refused Overloaded@."
    burst capacity !accepted !overloaded;
  Format.printf
    "max queue depth %d (bound %d); %d expired at the batch boundary@."
    st.Admission.max_depth capacity st.Admission.expired;
  Format.printf
    "degraded model -> typed Model_unavailable: %b; repaired LUT serves \
     bit-identically: %b@."
    unavailable_typed repaired_ok;
  Format.printf "garbage client contained, daemon alive: %b@." !garbage_ok;
  Format.printf
    "vanishing clients (EOF with queued requests) contained: %b@."
    post_vanish_ok;
  let ok =
    !overloaded > 0 && !odd = 0
    && st.Admission.max_depth <= capacity
    && unavailable_typed && repaired_ok && deadline_typed && !garbage_ok
    && post_vanish_ok
  in
  if not ok then begin
    Format.eprintf "serve torture section FAILED@.";
    exit 1
  end;
  Format.printf "torture: ok — zero daemon crashes@."

let run_serve () =
  section "Serve: inference daemon under concurrent load (+ torture)";
  let address = Server.Unix_sock (temp_socket "serve") in
  let store = Store.load ~domains:1 [ Store.parse_spec "resnet8=resnet8+mul8u_trunc8" ] in
  let graph =
    match Store.find store "resnet8" with
    | Some { Store.status = Store.Ready r; _ } -> r.Store.graph
    | _ -> assert false
  in
  let metrics = Ax_obs.Metrics.create () in
  let server =
    Server.start
      {
        (Server.default_config ~store ~address ()) with
        Server.queue_capacity = 64;
        max_batch = 8;
        linger = 0.001;
        metrics;
      }
  in
  let mismatches, failures =
    serve_throughput ~server ~address ~graph ~threads:4
      ~per_thread:(max 2 (images_measured / 2))
  in
  (* the server-side histogram view of the same traffic *)
  let snap = Ax_obs.Metrics.snapshot metrics in
  (match Ax_obs.Metrics.find_histogram snap "serve_request_seconds" with
  | Some h ->
    Format.printf
      "server-side serve_request_seconds: n=%d p50=%.1f ms p99=%.1f ms@."
      h.Ax_obs.Metrics.count
      (1000. *. h.Ax_obs.Metrics.p50)
      (1000. *. h.Ax_obs.Metrics.p99)
  | None -> ());
  Server.stop server;
  if mismatches > 0 || failures > 0 then begin
    Format.eprintf "serve bench FAILED: %d mismatches, %d failed requests@."
      mismatches failures;
    exit 1
  end;
  Format.printf "all responses bit-identical to one-shot Emulator runs@.@.";
  Format.printf "-- torture: overload + corrupt LUTs + garbage client --@.";
  serve_torture ()

(* ------------------------------------------------------------------ *)
(* Device sweep                                                        *)
(* ------------------------------------------------------------------ *)

let run_device_sweep () =
  section "A-extra: device sweep (modelled AxConv2D, ResNet-20, 10k images)";
  let graph = Resnet.build ~depth:20 () in
  let sample = (Cifar.generate ~n:2 ()).Cifar.images in
  let workloads =
    Cost.workloads_of_graph graph
      ~input:(Resnet.input_shape ~batch:1)
      ~images:10_000
  in
  Format.printf "%-18s %12s %12s %12s@." "device" "t_init" "t_comp" "hit rate";
  List.iter
    (fun device ->
      let rate = Experiments.measured_lut_hit_rate ~device ~graph ~sample () in
      let init =
        Cost.transfer_init device
          ~dataset_bytes:(float_of_int (10_000 * Cifar.image_bytes))
          ~weight_bytes:1e6
      in
      let phases =
        Cost.approx_network device ~lut_hit_rate:rate ~chunk_size:250
          workloads
      in
      Format.printf "%-18s %10.2f s %10.2f s %11.1f%%@." device.Device.name
        init.Cost.init_s (Cost.total phases)
        (100. *. rate))
    [ Device.gtx_1080; Device.jetson_class; Device.datacenter_class ]

(* ------------------------------------------------------------------ *)
(* Explore: certified design-space search throughput                   *)
(* ------------------------------------------------------------------ *)

(* One tiny seeded search, timed end-to-end.  The unit is candidate
   evaluations per second: each evaluation is the full admission
   pipeline (strip-dead, 2^16 tabulation, BDD certification, accuracy
   through the emulator, energy/power analysis), so this is the number
   that bounds how large a design-space sweep the machine can afford.
   Recorded under bench kind "explore" so the history gate compares it
   only against other explore runs. *)
let run_explore () =
  section "Explore: certified candidate evaluation throughput";
  let module Search = Ax_explore.Search in
  let config =
    {
      Search.default_config with
      Search.seed = 7;
      generations = 1;
      population = 3;
      images = 2;
      model = Search.Lenet;
    }
  in
  let result = Search.run config in
  let evals = result.Search.evaluated in
  let secs = result.Search.wall_seconds in
  let evals_per_sec = float_of_int evals /. secs in
  Format.printf
    "seed %d: %d evaluation(s) (%d rejected, %d cached) in %.2f s — %.2f \
     candidate evals/s, front size %d@."
    config.Search.seed evals result.Search.rejected result.Search.cache_hits
    secs evals_per_sec
    (List.length result.Search.front);
  let history_path =
    Option.value ~default:"BENCH_history.jsonl"
      (Sys.getenv_opt "TFAPPROX_BENCH_HISTORY")
  in
  Tfapprox.Perf.append_history history_path
    {
      Tfapprox.Perf.label = Tfapprox.Perf.utc_label ();
      bench = "explore";
      images = config.Search.images;
      throughput =
        [
          { Tfapprox.Perf.domains = 1; seconds = secs;
            images_per_sec = evals_per_sec };
        ];
      ns_per_mac = None;
      lut_compression = None;
    };
  Format.printf "appended to %s (bench kind explore, evals/s as throughput)@."
    history_path

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("table1", run_table1);
    ("fig2", run_fig2);
    ("micro", run_micro);
    ("lut-independence", run_lut_independence);
    ("cache-ablation", run_cache_ablation);
    ("chunk-ablation", run_chunk_ablation);
    ("accumulator-ablation", run_accumulator_ablation);
    ("workloads", run_workloads);
    ("round-modes", run_round_modes);
    ("per-layer", run_per_layer);
    ("device-sweep", run_device_sweep);
    ("pool", run_pool);
    ("serve", run_serve);
    ("gemm", run_gemm);
    ("explore", run_explore);
    ("history", run_history);
    ("trace", run_trace);
    ("resilience", run_resilience);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | [ _ ] | [] -> List.map fst all_sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_sections with
      | Some f -> f ()
      | None ->
        Format.printf "unknown section %s (have: %s)@." name
          (String.concat ", " (List.map fst all_sections));
        exit 1)
    requested
