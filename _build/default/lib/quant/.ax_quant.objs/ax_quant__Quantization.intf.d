lib/quant/quantization.mli: Ax_arith Ax_tensor Bytes Round
