lib/nn/filter.mli: Ax_tensor
