lib/arith/truncation.ml:
