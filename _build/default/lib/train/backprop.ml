module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Tensor = Ax_tensor.Tensor

type param_grad =
  | Conv_grad of { filter : float array; bias : float array option }
  | Dense_grad of { weights : float array; bias : float array }
  | Bn_grad of { scale : float array; shift : float array }

let tensor_of = function
  | Exec.Tensor t -> t
  | Exec.Scalar _ -> invalid_arg "Backprop: expected tensor value"

let loss_and_gradients ?strategy g ~input ~labels =
  let values = Exec.run_all ?strategy g ~input in
  let out_id = Graph.output g in
  let probs =
    match (Graph.node g out_id).Graph.op with
    | Graph.Softmax -> tensor_of values.(out_id)
    | _ -> invalid_arg "Backprop: graph output must be Softmax"
  in
  let loss, dlogits = Grad.softmax_cross_entropy ~probs ~labels in
  (* dL/d(node output); accumulated because of fan-out (residual nets). *)
  let grads : Tensor.t option array = Array.make (Graph.size g) None in
  let accumulate id delta =
    match grads.(id) with
    | None -> grads.(id) <- Some (Tensor.copy delta)
    | Some existing ->
      let a = Tensor.buffer existing and b = Tensor.buffer delta in
      for i = 0 to Tensor.num_elements existing - 1 do
        a.{i} <- a.{i} +. b.{i}
      done
  in
  (* Seed at the softmax *input* (fused CE gradient skips the softmax
     VJP, which is both faster and better conditioned). *)
  (match (Graph.node g out_id).Graph.inputs with
  | [ logits_id ] -> accumulate logits_id dlogits
  | _ -> invalid_arg "Backprop: softmax arity");
  let param_grads = ref [] in
  let record id pg = param_grads := (id, pg) :: !param_grads in
  for id = Graph.size g - 1 downto 0 do
    if id <> out_id then
      match grads.(id) with
      | None -> ()
      | Some dout ->
        let n = Graph.node g id in
        let in_tensor k = tensor_of values.(List.nth n.Graph.inputs k) in
        (match n.Graph.op with
        | Graph.Input | Graph.Const_scalar _ -> ()
        | Graph.Min_reduce | Graph.Max_reduce ->
          (* Scalar-valued; never receives a tensor gradient. *)
          ()
        | Graph.Conv2d { filter; bias; spec }
        | Graph.Ax_conv2d { filter; bias; spec; _ } ->
          let x = in_tensor 0 in
          let dinput, dfilter, dbias =
            Grad.conv_backward ~input:x ~filter ~spec ~dout
          in
          record id
            (Conv_grad
               {
                 filter = dfilter;
                 bias = (match bias with Some _ -> Some dbias | None -> None);
               });
          accumulate (List.nth n.Graph.inputs 0) dinput
        | Graph.Depthwise_conv2d { filter; bias; spec }
        | Graph.Ax_depthwise_conv2d { filter; bias; spec; _ } ->
          let x = in_tensor 0 in
          let dinput, dfilter, dbias =
            Grad.depthwise_backward ~input:x ~filter ~spec ~dout
          in
          record id
            (Conv_grad
               {
                 filter = dfilter;
                 bias = (match bias with Some _ -> Some dbias | None -> None);
               });
          accumulate (List.nth n.Graph.inputs 0) dinput
        | Graph.Dense { weights; _ } ->
          let x = in_tensor 0 in
          let dinput, dweights, dbias =
            Grad.dense_backward ~input:x ~weights ~dout
          in
          record id (Dense_grad { weights = dweights; bias = dbias });
          accumulate (List.nth n.Graph.inputs 0) dinput
        | Graph.Batch_norm { scale; _ } ->
          let x = in_tensor 0 in
          let dinput, dscale, dshift =
            Grad.batch_norm_backward ~input:x ~scale ~dout
          in
          record id (Bn_grad { scale = dscale; shift = dshift });
          accumulate (List.nth n.Graph.inputs 0) dinput
        | Graph.Relu ->
          let out = tensor_of values.(id) in
          accumulate (List.nth n.Graph.inputs 0)
            (Grad.relu_backward ~output:out ~dout)
        | Graph.Max_pool { size; stride } ->
          let x = in_tensor 0 in
          accumulate (List.nth n.Graph.inputs 0)
            (Grad.max_pool_backward ~input:x ~size ~stride ~dout)
        | Graph.Global_avg_pool ->
          let x = in_tensor 0 in
          accumulate (List.nth n.Graph.inputs 0)
            (Grad.global_avg_pool_backward ~input_shape:(Tensor.shape x)
               ~dout)
        | Graph.Add ->
          accumulate (List.nth n.Graph.inputs 0) dout;
          accumulate (List.nth n.Graph.inputs 1) dout
        | Graph.Softmax ->
          let out = tensor_of values.(id) in
          accumulate (List.nth n.Graph.inputs 0)
            (Grad.softmax_backward ~output:out ~dout)
        | Graph.Shortcut_pad { stride; _ } ->
          let x = in_tensor 0 in
          accumulate (List.nth n.Graph.inputs 0)
            (Grad.shortcut_pad_backward ~input_shape:(Tensor.shape x)
               ~stride ~dout))
  done;
  (loss, !param_grads)
