lib/data/mnist.ml: Array Ax_tensor Dataset Float Printf
