module Graph = Ax_nn.Graph
module Filter = Ax_nn.Filter
module Accumulator = Ax_nn.Accumulator
module Axconv = Ax_nn.Axconv
module Lut = Ax_arith.Lut
module S = Ax_arith.Signedness
module D = Diagnostic

type layer = {
  node_id : int;
  name : string;
  op : string;
  signedness : S.t;
  taps : int;
  lut_lo : int;
  lut_hi : int;
  acc_lo : int;
  acc_hi : int;
  bits_needed : int;
  headroom_bits : int;
}

let reference_width = 32

(* --- interval arithmetic (exact in OCaml's 63-bit ints; every
   quantity here is far below 2^62) --- *)

let mul (alo, ahi) (blo, bhi) =
  let c1 = alo * blo and c2 = alo * bhi and c3 = ahi * blo and c4 = ahi * bhi in
  (min (min c1 c2) (min c3 c4), max (max c1 c2) (max c3 c4))

let add (alo, ahi) (blo, bhi) = (alo + blo, ahi + bhi)
let sub (alo, ahi) (blo, bhi) = (alo - bhi, ahi - blo)
let union (alo, ahi) (blo, bhi) = (min alo blo, max ahi bhi)

let bits_for (lo, hi) =
  let fits b = lo >= -(1 lsl (b - 1)) && hi <= (1 lsl (b - 1)) - 1 in
  let rec search b = if b >= 62 || fits b then b else search (b + 1) in
  search 1

(* The decoded product range of a table is a per-table constant; scan
   each distinct table once (physical identity — configs share LUTs). *)
let lut_range_cache : (Lut.t * (int * int)) list ref = ref []

let lut_range lut =
  match List.find_opt (fun (l, _) -> l == lut) !lut_range_cache with
  | Some (_, r) -> r
  | None ->
    let lo = ref max_int and hi = ref min_int in
    for ca = 0 to 255 do
      for cb = 0 to 255 do
        let v = Lut.lookup_code lut ca cb in
        if v < !lo then lo := v;
        if v > !hi then hi := v
      done
    done;
    let r = (!lo, !hi) in
    if List.length !lut_range_cache > 32 then lut_range_cache := [];
    lut_range_cache := (lut, r) :: !lut_range_cache;
    r

let exact_product_range s =
  let vmin = S.min_value s and vmax = S.max_value s in
  mul (vmin, vmax) (vmin, vmax)

let check_lut ?(location = D.Global) lut =
  let s = Lut.signedness lut in
  let lut_lo, lut_hi = lut_range lut in
  let exact_lo, exact_hi = exact_product_range s in
  if lut_lo < exact_lo || lut_hi > exact_hi then
    [
      D.make ~rule:"quant/product-overflow" ~location
        (Printf.sprintf
           "LUT products span [%d, %d]; exact %s products span [%d, %d]"
           lut_lo lut_hi (S.to_string s) exact_lo exact_hi);
    ]
  else []

let analyze_layer ~node_id ~name ~op ~taps (config : Axconv.config) =
  let diags = ref [] in
  let emit ~rule msg =
    diags :=
      D.make ~rule ~location:(D.Graph_node { id = node_id; name }) msg :: !diags
  in
  let s = Lut.signedness config.Axconv.lut in
  if config.Axconv.chunk_size <= 0 then
    emit ~rule:"quant/chunk-size"
      (Printf.sprintf "chunk size %d" config.Axconv.chunk_size);
  (match Accumulator.validate config.Axconv.accumulator with
  | () -> ()
  | exception Invalid_argument msg -> emit ~rule:"quant/accumulator-width" msg);
  (* Operand codes are clamped into the signedness's quantized range, so
     the stitched index (ca << 8) | cb is bounded by the all-ones
     pattern; re-derive the bound instead of assuming it. *)
  let max_index = Lut.raw_index 0xff 0xff in
  if max_index >= Lut.entries || Lut.raw_index 0 0 < 0 then
    emit ~rule:"quant/lut-index"
      (Printf.sprintf "operand codes reach index %d of a %d-entry table"
         max_index Lut.entries);
  let ((lut_lo, lut_hi) as lut_iv) = lut_range config.Axconv.lut in
  let exact_lo, exact_hi = exact_product_range s in
  if lut_lo < exact_lo || lut_hi > exact_hi then
    emit ~rule:"quant/product-overflow"
      (Printf.sprintf
         "LUT products span [%d, %d]; exact %s products span [%d, %d]" lut_lo
         lut_hi (S.to_string s) exact_lo exact_hi);
  (* Worst-case Eq. 4 interval.  acc is a sum of exactly N table
     values; the correction subtracts beta2*Sp and beta1*Sf and adds
     N*beta1*beta2, with every beta a quantized-range scalar and every
     S a sum of N quantized codes.  Partial sums before correction are
     included so an accumulator that clips mid-reduction is caught. *)
  let q = (S.min_value s, S.max_value s) in
  let n_iv = (taps, taps) in
  let acc = mul n_iv lut_iv in
  let sums = mul n_iv q in
  let corrected =
    add (sub (sub acc (mul q sums)) (mul q sums)) (mul n_iv (mul q q))
  in
  let partial = union (0, 0) acc in
  let ((acc_lo, acc_hi) as worst) = union partial corrected in
  let bits_needed = bits_for worst in
  let headroom_bits = reference_width - bits_needed in
  let describe verb width =
    Printf.sprintf
      "worst-case corrected sum spans [%d, %d] (%d bits) and can %s the \
       %d-bit accumulator"
      acc_lo acc_hi bits_needed verb width
  in
  (match config.Axconv.accumulator with
  | Accumulator.Wide ->
    if bits_needed > reference_width then
      emit ~rule:"quant/acc-overflow" (describe "overflow" reference_width)
  | Accumulator.Saturating w ->
    if bits_needed > w then emit ~rule:"quant/acc-saturate" (describe "clip" w)
  | Accumulator.Wrapping w ->
    if bits_needed > w then emit ~rule:"quant/acc-wrap" (describe "wrap" w)
  | Accumulator.Lower_or { width; _ } ->
    if bits_needed > width then
      emit ~rule:"quant/acc-wrap" (describe "wrap" width));
  ( List.rev !diags,
    {
      node_id;
      name;
      op;
      signedness = s;
      taps;
      lut_lo;
      lut_hi;
      acc_lo;
      acc_hi;
      bits_needed;
      headroom_bits;
    } )

let check g =
  let diags = ref [] and layers = ref [] in
  Array.iter
    (fun node ->
      let analyzed =
        match node.Graph.op with
        | Graph.Ax_conv2d { filter; config; _ } ->
          Some (Filter.taps filter, config)
        | Graph.Ax_depthwise_conv2d { filter; config; _ } ->
          (* depthwise reduces one channel slice: N = kh*kw *)
          Some (Filter.kh filter * Filter.kw filter, config)
        | Graph.Input | Graph.Conv2d _ | Graph.Depthwise_conv2d _
        | Graph.Min_reduce | Graph.Max_reduce | Graph.Const_scalar _
        | Graph.Relu | Graph.Max_pool _ | Graph.Global_avg_pool
        | Graph.Dense _ | Graph.Batch_norm _ | Graph.Add | Graph.Softmax
        | Graph.Shortcut_pad _ ->
          None
      in
      match analyzed with
      | None -> ()
      | Some (taps, config) ->
        let ds, layer =
          analyze_layer ~node_id:node.Graph.id ~name:node.Graph.name
            ~op:(Graph.op_name node.Graph.op)
            ~taps config
        in
        diags := List.rev_append ds !diags;
        layers := layer :: !layers)
    (Graph.nodes g);
  (List.rev !diags, List.rev !layers)

let pp_headroom ppf layers =
  Format.fprintf ppf "%-24s %-18s %8s %6s %12s %6s %9s@." "layer" "op" "N"
    "sign" "lut range" "bits" "headroom";
  List.iter
    (fun l ->
      Format.fprintf ppf "%-24s %-18s %8d %6s [%5d,%5d] %6d %9d@." l.name l.op
        l.taps
        (S.to_string l.signedness)
        l.lut_lo l.lut_hi l.bits_needed l.headroom_bits)
    layers

let layers_to_json layers =
  Ax_obs.Json.List
    (List.map
       (fun l ->
         Ax_obs.Json.Obj
           [
             ("node", Ax_obs.Json.Int l.node_id);
             ("name", Ax_obs.Json.String l.name);
             ("op", Ax_obs.Json.String l.op);
             ("signedness", Ax_obs.Json.String (S.to_string l.signedness));
             ("taps", Ax_obs.Json.Int l.taps);
             ("lut_lo", Ax_obs.Json.Int l.lut_lo);
             ("lut_hi", Ax_obs.Json.Int l.lut_hi);
             ("acc_lo", Ax_obs.Json.Int l.acc_lo);
             ("acc_hi", Ax_obs.Json.Int l.acc_hi);
             ("bits_needed", Ax_obs.Json.Int l.bits_needed);
             ("headroom_bits", Ax_obs.Json.Int l.headroom_bits);
           ])
       layers)
