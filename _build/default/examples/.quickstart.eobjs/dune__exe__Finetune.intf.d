examples/finetune.mli:
