lib/arith/truncation.mli:
