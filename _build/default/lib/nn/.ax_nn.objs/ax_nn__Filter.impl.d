lib/nn/filter.ml: Array Ax_tensor Printf
