type candidate = {
  mask : bool array;
  kept : int;
  metrics : Error_metrics.t;
  area_proxy : float;
}

let bits = 8
let mask_size = bits * bits

let full_mask () = Array.make mask_size true

let truncation_mask ~cut =
  Array.init mask_size (fun idx ->
      let i = idx / bits and j = idx mod bits in
      i + j >= cut)

let multiply_of_mask mask a b =
  let acc = ref 0 in
  for i = 0 to bits - 1 do
    if (a lsr i) land 1 = 1 then
      for j = 0 to bits - 1 do
        if (b lsr j) land 1 = 1 && mask.((i * bits) + j) then
          acc := !acc + (1 lsl (i + j))
      done
  done;
  !acc

(* Each kept partial product costs roughly one AND gate plus its share
   of the compression tree (~a full adder): ~ 6 + 28/2 transistors. *)
let area_proxy_of_mask mask =
  let kept = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
  20. *. float_of_int kept

let evaluate mask =
  if Array.length mask <> mask_size then
    invalid_arg "Search.evaluate: mask must have 64 entries";
  let metrics =
    Error_metrics.compute Signedness.Unsigned (multiply_of_mask mask)
  in
  {
    mask = Array.copy mask;
    kept = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask;
    metrics;
    area_proxy = area_proxy_of_mask mask;
  }

let netlist_of candidate =
  let mask = candidate.mask in
  Ax_netlist.Multipliers.pruned ~bits
    ~keep:(fun i j -> mask.((i * bits) + j))
    ~name:(Printf.sprintf "mul8u_searched_%d" candidate.kept)

let hardware_of candidate =
  Ax_netlist.Power.analyze (netlist_of candidate).Ax_netlist.Multipliers.circuit

(* MAE of a mask can be computed incrementally: dropping product (i,j)
   removes value 2^(i+j) whenever a_i = b_j = 1, i.e. in exactly
   65536/4 input pairs, always reducing the result.  The *marginal* MAE
   of a drop therefore composes additively across drops:
   E[|error|] = sum over dropped (i,j) of 2^(i+j) * P(a_i=1)*P(b_j=1)
   because all drops push in the same (negative) direction.  This makes
   greedy pruning by weight exact without re-sweeping per candidate —
   but we still sweep for the *recorded* candidates so the reported
   metrics carry WCE, bias etc. *)
let greedy_prune ?(max_mae = 1000.) () =
  let mask = full_mask () in
  let trajectory = ref [ evaluate mask ] in
  let continue_ = ref true in
  while !continue_ do
    (* Cheapest drop = smallest weight 2^(i+j) still kept. *)
    let best = ref (-1) and best_weight = ref infinity in
    Array.iteri
      (fun idx keep ->
        if keep then begin
          let i = idx / bits and j = idx mod bits in
          let weight = 2. ** float_of_int (i + j) in
          if weight < !best_weight then begin
            best_weight := weight;
            best := idx
          end
        end)
      mask;
    if !best < 0 then continue_ := false
    else begin
      mask.(!best) <- false;
      let candidate = evaluate mask in
      if candidate.metrics.Error_metrics.mae > max_mae then begin
        mask.(!best) <- true;
        continue_ := false
      end
      else trajectory := candidate :: !trajectory
    end
  done;
  List.rev !trajectory

let dominates a b =
  a.metrics.Error_metrics.mae <= b.metrics.Error_metrics.mae
  && a.area_proxy <= b.area_proxy
  && (a.metrics.Error_metrics.mae < b.metrics.Error_metrics.mae
     || a.area_proxy < b.area_proxy)

let pareto_front candidates =
  let survivors =
    List.filter
      (fun c -> not (List.exists (fun d -> dominates d c) candidates))
      candidates
  in
  List.sort (fun a b -> compare a.area_proxy b.area_proxy) survivors

(* Tiny local xorshift; keeps ax_arith free of a tensor-library
   dependency just for mask sampling. *)
let xorshift seed =
  let state = ref (if seed = 0 then 0x2545F491 else seed) in
  fun () ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land max_int;
    !state

let random_candidates ?(seed = 1) ~samples () =
  if samples <= 0 then invalid_arg "Search.random_candidates: samples";
  let rng = xorshift seed in
  List.init samples (fun _ ->
      let mask =
        Array.init mask_size (fun idx ->
            idx = mask_size - 1 || rng () land 1 = 1)
      in
      evaluate mask)
