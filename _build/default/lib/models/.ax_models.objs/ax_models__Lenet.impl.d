lib/models/lenet.ml: Array Ax_nn Ax_tensor Weights
