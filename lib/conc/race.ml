(* Shared-cell annotations for the race detector.  A cell names one
   logical shared location (a mutable field, a counter); annotated
   reads/writes flow into the FastTrack state in record mode and into
   the explorer's per-run detector during exploration.  Cells are
   per-INSTANCE (fresh id), so two pools' job slots never alias. *)

type cell = {
  id : int;
  name : string;
}

let cell name = { id = Conc.fresh_id (); name }
let name c = c.name

let touch c kind =
  if Conc.enabled () then
    match Conc.explore_for_me () with
    | Some h -> h.Conc.x_cell ~id:c.id ~name:c.name ~write:(kind = Vclock.Write)
    | None -> if Conc.tracking () then Conc.on_cell_access ~id:c.id ~name:c.name kind

let read c = touch c Vclock.Read
let write c = touch c Vclock.Write
