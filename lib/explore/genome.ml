module Circuit = Ax_netlist.Circuit
module Gate = Ax_netlist.Gate
module Opt = Ax_netlist.Opt
module Multipliers = Ax_netlist.Multipliers

type op = Buf | Not | And2 | Or2 | Xor2 | Nand2 | Nor2 | Xnor2

type gene =
  | Input of string
  | Const of bool
  | Gate of { op : op; a : int; b : int }

type t = {
  name : string;
  width_a : int;
  width_b : int;
  product_bits : int;
  signed : bool;
  genes : gene array;
  outputs : (string * int) array;
}

let of_multiplier (m : Multipliers.t) =
  let c = m.Multipliers.circuit in
  let genes = Array.make (Circuit.node_count c) (Const false) in
  Circuit.iter_gates c (fun i g ->
      genes.(i) <-
        (match g with
        | Gate.Input label -> Input label
        | Gate.Const b -> Const b
        | Gate.Buf a -> Gate { op = Buf; a; b = a }
        | Gate.Not a -> Gate { op = Not; a; b = a }
        | Gate.And2 (a, b) -> Gate { op = And2; a; b }
        | Gate.Or2 (a, b) -> Gate { op = Or2; a; b }
        | Gate.Xor2 (a, b) -> Gate { op = Xor2; a; b }
        | Gate.Nand2 (a, b) -> Gate { op = Nand2; a; b }
        | Gate.Nor2 (a, b) -> Gate { op = Nor2; a; b }
        | Gate.Xnor2 (a, b) -> Gate { op = Xnor2; a; b }));
  let outputs =
    Array.of_list
      (List.map
         (fun (label, s) -> (label, Circuit.index s))
         (Circuit.outputs c))
  in
  {
    name = Circuit.name c;
    width_a = m.Multipliers.width_a;
    width_b = m.Multipliers.width_b;
    product_bits = m.Multipliers.product_bits;
    signed = m.Multipliers.signed;
    genes;
    outputs;
  }

let to_circuit ?name g =
  let c = Circuit.create ~name:(Option.value ~default:g.name name) () in
  let map = Array.make (Array.length g.genes) None in
  let resolve i =
    match map.(i) with
    | Some s -> s
    | None -> invalid_arg "Genome.to_circuit: gene reads an undefined fan-in"
  in
  Array.iteri
    (fun i gene ->
      let s =
        match gene with
        | Input label -> Circuit.input c label
        | Const b -> Circuit.const c b
        | Gate { op; a; b } -> (
          if a >= i || b >= i || a < 0 || b < 0 then
            invalid_arg "Genome.to_circuit: fan-in not strictly below gene";
          let sa = resolve a in
          match op with
          | Buf -> Circuit.buf_ c sa
          | Not -> Circuit.not_ c sa
          | And2 -> Circuit.and_ c sa (resolve b)
          | Or2 -> Circuit.or_ c sa (resolve b)
          | Xor2 -> Circuit.xor_ c sa (resolve b)
          | Nand2 -> Circuit.nand_ c sa (resolve b)
          | Nor2 -> Circuit.nor_ c sa (resolve b)
          | Xnor2 -> Circuit.xnor_ c sa (resolve b))
      in
      map.(i) <- Some s)
    g.genes;
  Array.iter
    (fun (label, idx) -> Circuit.output c label (resolve idx))
    g.outputs;
  c

let to_multiplier ?name g =
  {
    Multipliers.circuit = Opt.strip_dead (to_circuit ?name g);
    width_a = g.width_a;
    width_b = g.width_b;
    product_bits = g.product_bits;
    signed = g.signed;
  }

let all_ops = [| Buf; Not; And2; Or2; Xor2; Nand2; Nor2; Xnor2 |]

let mutate ~rng ?(operations = 1) g =
  let genes = Array.copy g.genes in
  (* Mutation targets are fixed up front: a gene const-folded by an
     earlier edit of the same call stays selectable but the edit then
     degenerates to re-folding it, which keeps the operation count an
     upper bound rather than a promise. *)
  let targets =
    Array.of_list
      (List.filter
         (fun i -> match genes.(i) with Gate _ -> true | _ -> false)
         (List.init (Array.length genes) Fun.id))
  in
  if Array.length targets > 0 then
    for _ = 1 to Int.max 0 operations do
      let i = targets.(Srng.int rng (Array.length targets)) in
      match Srng.int rng 3 with
      | 0 -> (
        (* gate substitution *)
        match genes.(i) with
        | Gate { a; b; _ } ->
          genes.(i) <-
            Gate { op = all_ops.(Srng.int rng (Array.length all_ops)); a; b }
        | Input _ | Const _ -> genes.(i) <- Const (Srng.bool rng))
      | 1 -> (
        (* fan-in rewire; gates always sit above index 0, so the draw
           below is over a non-empty range *)
        match genes.(i) with
        | Gate { op; a; b } ->
          let target = Srng.int rng i in
          genes.(i) <-
            (if Srng.bool rng then Gate { op; a = target; b }
             else Gate { op; a; b = target })
        | Input _ | Const _ -> genes.(i) <- Const (Srng.bool rng))
      | _ -> genes.(i) <- Const (Srng.bool rng)
    done;
  { g with genes }

let valid g =
  let n = Array.length g.genes in
  let genes_ok =
    Array.for_all Fun.id
      (Array.mapi
         (fun i gene ->
           match gene with
           | Input _ | Const _ -> true
           | Gate { a; b; _ } -> a >= 0 && a < i && b >= 0 && b < i)
         g.genes)
  in
  let inputs =
    Array.fold_left
      (fun acc gene -> match gene with Input _ -> acc + 1 | _ -> acc)
      0 g.genes
  in
  let labels = Array.to_list (Array.map fst g.outputs) in
  let outputs_ok =
    Array.for_all (fun (_, idx) -> idx >= 0 && idx < n) g.outputs
    && List.length (List.sort_uniq String.compare labels) = List.length labels
  in
  genes_ok && outputs_ok && inputs = g.width_a + g.width_b

let gate_gene_count g =
  Array.fold_left
    (fun acc gene -> match gene with Gate _ -> acc + 1 | _ -> acc)
    0 g.genes
