module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module Lut = Ax_arith.Lut
module Lc = Ax_quant.Lut_compressed
module S = Ax_arith.Signedness
module Pool = Ax_pool.Pool

type granularity = Per_tensor | Per_channel

type config = {
  lut : Lut.t;
  round_mode : Round.t;
  chunk_size : int;
  granularity : granularity;
  accumulator : Accumulator.t;
  domains : int;
  compress : bool;
}

let default_chunk_size = 250

let make_config ?(round_mode = Round.Nearest_even)
    ?(chunk_size = default_chunk_size) ?(granularity = Per_tensor)
    ?(accumulator = Accumulator.Wide) ?(domains = 1) ?(compress = false) lut =
  if chunk_size <= 0 then invalid_arg "Axconv.make_config: chunk_size";
  Pool.validate_domains ~what:"Axconv.make_config" domains;
  Accumulator.validate accumulator;
  { lut; round_mode; chunk_size; granularity; accumulator; domains; compress }

let filter_coeffs granularity signedness filter filter_range =
  let out_c = Filter.out_c filter in
  match granularity with
  | Per_tensor ->
    let c =
      Q.compute_coeffs signedness ~rmin:filter_range.Range.min
        ~rmax:filter_range.Range.max
    in
    Array.make out_c c
  | Per_channel ->
    let mins = Array.make out_c infinity in
    let maxs = Array.make out_c neg_infinity in
    Filter.iter filter (fun ~h:_ ~w:_ ~c:_ ~k v ->
        if v < mins.(k) then mins.(k) <- v;
        if v > maxs.(k) then maxs.(k) <- v);
    let fmin = filter_range.Range.min and fmax = filter_range.Range.max in
    Array.init out_c (fun k ->
        (* Each channel quantizes over its own observed bounds clipped to
           the supplied filter range — the range is the layer's contract
           for what the hardware must represent, so a channel may not
           exceed it.  Channels whose bounds are unusable (weights
           containing NaN leave them at ±infinity, an all-infinite
           channel inverts them) fall back to the supplied range, and a
           non-finite supplied range degrades to the all-zero range —
           [compute_coeffs] then picks its degenerate positive scale, so
           the returned alpha is always finite. *)
        let rmin = Float.max mins.(k) fmin and rmax = Float.min maxs.(k) fmax in
        let rmin, rmax =
          if Float.is_finite rmin && Float.is_finite rmax && rmin <= rmax then
            (rmin, rmax)
          else if Float.is_finite fmin && Float.is_finite fmax && fmin <= fmax
          then (fmin, fmax)
          else (0., 0.)
        in
        Q.compute_coeffs signedness ~rmin ~rmax)

let quantize_filters_per_channel signedness coeffs round_mode filter =
  let taps = Filter.taps filter and out_c = Filter.out_c filter in
  if Array.length coeffs <> out_c then
    invalid_arg "Axconv.quantize_filters_per_channel: coeffs length";
  let mf_t = Bytes.create (out_c * taps) in
  let sf = Array.make out_c 0 in
  Filter.iter filter (fun ~h ~w ~c ~k v ->
      let ck = coeffs.(k) in
      let q =
        S.clamp signedness
          (Round.apply round_mode
             ((v /. ck.Q.alpha) +. float_of_int ck.Q.beta))
      in
      sf.(k) <- sf.(k) + q;
      let tap = ((h * Filter.kw filter) + w) * Filter.in_c filter + c in
      Bytes.unsafe_set mf_t ((k * taps) + tap) (Char.unsafe_chr (q land 0xff)));
  (mf_t, sf)

let quantize_filters signedness coeffs round_mode filter =
  quantize_filters_per_channel signedness
    (Array.make (Filter.out_c filter) coeffs)
    round_mode filter

(* Register/cache blocking for the ApproxGEMM.  An accumulator block of
   [tile_rows] patch rows by [tile_cols] output channels stays resident
   while [tile_taps] taps stream through it.  With the patch code [ca]
   fixed, the inner channel loop reads one contiguous run of the
   tap-major packed filter codes and stays inside one 256-entry
   (512-byte) row of the LUT, so both live in L1.  Tap blocks ascend,
   and within a block the loop order is row, then tap, then channel: for
   any fixed (row, channel) pair the products still arrive in ascending
   tap order, which is what keeps every [Accumulator] model —
   saturating, wrapping, lower-OR — bit-identical to the unblocked
   kernel.  [Wide] is order-independent anyway. *)
let tile_rows = 8
let tile_cols = 64
let tile_taps = 128

(* Dynamic-claim grain for the GEMM row fan-out: a few tiles per claim
   keeps the atomic-counter overhead invisible while letting idle
   domains steal from a slow one.  Any grain yields bit-identical
   output — each patch row is produced entirely by whichever domain
   claims it — so this is a pure latency knob. *)
let gemm_grain = 4 * tile_rows

(* Per-view decoded product, for the checked-accumulator paths: one
   closure built per conv, matching [Lc.lookup_code] bit for bit.
   [corr] is the raw table's decode correction, used only by the
   [Raw_view] arm. *)
let product_of_view ~corr view vals =
  match view with
  | Lc.Exact_view -> fun ca cb -> vals.(ca) * vals.(cb)
  | Lc.Masked_view { mask; decode_correction } ->
    fun ca cb ->
      let r = vals.(ca) * vals.(cb) land mask in
      r - ((r lsr 15) * decode_correction)
  | Lc.Low_view { shift; amask; bmask; tbl } ->
    fun ca cb ->
      (vals.(ca) * vals.(cb))
      + tbl.{((ca land amask) lsl shift) lor (cb land bmask)}
  | Lc.Split_view { s; low_mask; high_mask; high_shift; d1; d2 } ->
    fun ca cb ->
      (vals.(ca) * vals.(cb))
      + d1.{(ca lsl s) lor (cb land low_mask)}
      + d2.{((ca land high_mask) lsl high_shift) lor (cb lsr s)}
  | Lc.Nibble_view { hi; lo } ->
    fun ca cb ->
      (vals.(ca) * vals.(cb))
      + hi.{((ca lsr 4) lsl 8) lor cb}
      + lo.{((ca land 15) lsl 8) lor cb}
  | Lc.Sparse_view { sym; bitmap; bases; pop; corr } ->
    fun ca cb ->
      (vals.(ca) * vals.(cb))
      + Lc.sparse_delta ~sym ~bitmap ~bases ~pop ~corr ca cb
  | Lc.Raw_view table ->
    fun ca cb ->
      let raw = Bigarray.Array1.unsafe_get table ((ca lsl 8) lor cb) in
      raw - ((raw lsr 15) * corr)

let conv ?profile ?pool ?scratch ~config ~input ~input_range ~filter
    ~filter_range ?bias ~spec () =
  (match bias with
  | Some b when Array.length b <> Filter.out_c filter ->
    invalid_arg "Axconv.conv: bias length differs from filter count"
  | Some _ | None -> ());
  (* Resolve the worker pool once per conv: an explicit [pool] wins, a
     multi-domain config borrows the process-wide pool, and the
     single-domain default stays entirely pool-free. *)
  let pool =
    match pool with
    | Some _ as p -> p
    | None ->
      if config.domains > 1 then Some (Pool.ensure ~domains:config.domains)
      else None
  in
  let charge phase f =
    match profile with Some p -> Profile.time p phase f | None -> f ()
  in
  let span name attrs f =
    match profile with
    | Some p -> Profile.span p ~name ~attrs f
    | None -> f ()
  in
  let note name n =
    match profile with Some p -> Profile.count p name n | None -> ()
  in
  let lut = config.lut in
  let signedness = Lut.signedness lut in
  let out_shape = Conv_spec.output_shape spec (Tensor.shape input) filter in
  let effective_domains =
    match pool with
    | Some p -> min config.domains (Pool.size p)
    | None -> 1
  in
  span "axconv.conv"
    [
      ( "out_shape",
        Printf.sprintf "%dx%dx%dx%d" out_shape.Shape.n out_shape.Shape.h
          out_shape.Shape.w out_shape.Shape.c );
      ("taps", string_of_int (Filter.taps filter));
      ("out_c", string_of_int (Filter.out_c filter));
      ("chunk_size", string_of_int config.chunk_size);
      ("domains", string_of_int effective_domains);
    ]
  @@ fun () ->
  let out = charge Profile.Init (fun () -> Tensor.create out_shape) in
  (* The chunk-reusable buffers ([mp]/[sp]/[pf]) come from the caller's
     arena (default: this domain's); the accumulator tile always comes
     from the executing domain's own arena, so pool workers stay
     allocation-free too. *)
  let scratch =
    match scratch with Some s -> s | None -> Scratch.domain_local ()
  in
  (* ComputeCoeffs for both operands, then quantize the filter bank once
     for the whole batch. *)
  let coeffs1, coeffs2, mf_t, sf =
    charge Profile.Quantization (fun () ->
        let coeffs1 =
          Q.compute_coeffs signedness ~rmin:input_range.Range.min
            ~rmax:input_range.Range.max
        in
        let coeffs2 =
          filter_coeffs config.granularity signedness filter filter_range
        in
        let mf_t, sf =
          quantize_filters_per_channel signedness coeffs2 config.round_mode
            filter
        in
        (coeffs1, coeffs2, mf_t, sf))
  in
  let taps = Filter.taps filter and out_c = Filter.out_c filter in
  let beta1 = coeffs1.Q.beta in
  (* Per-channel dequantization constants (all equal when per-tensor). *)
  let alpha12 = Array.map (fun c -> coeffs1.Q.alpha *. c.Q.alpha) coeffs2 in
  let beta2 = Array.map (fun c -> c.Q.beta) coeffs2 in
  let n_beta12 = Array.map (fun b2 -> taps * beta1 * b2) beta2 in
  (* Repack the filter codes tap-major ([pf.(p * out_c + k)]): the
     blocked kernel walks channels innermost, and this layout makes that
     walk contiguous.  Once per conv, straight out of the filter-major
     bank. *)
  let pf =
    charge Profile.Quantization (fun () ->
        let pf = Scratch.pf scratch (taps * out_c) in
        for k = 0 to out_c - 1 do
          let mf_base = k * taps in
          for p = 0 to taps - 1 do
            Bytes.unsafe_set pf ((p * out_c) + k)
              (Bytes.unsafe_get mf_t (mf_base + p))
          done
        done;
        pf)
  in
  let corr = Lut.decode_correction lut in
  (* Hoisted table: without cross-module inlining, [Lut.unsafe_raw]
     would cost a call per MAC. *)
  let table = Lut.table lut in
  (* Compressed working set: when the LUT's delta-vs-exact encoding fits
     the 16 kB budget the kernel reads that instead of the 128 kB raw
     table (memoised per physical LUT, exhaustively verified equal at
     construction).  [Raw_view] means compression didn't pay — the
     existing raw loops run unchanged, as they do with [compress]
     off. *)
  let comp_view =
    if config.compress then begin
      let c = charge Profile.Init (fun () -> Lc.of_lut lut) in
      match Lc.view c with
      | Lc.Raw_view _ -> None
      | v -> Some (v, Lc.values c)
    end
    else None
  in
  let product_code =
    match comp_view with
    | Some (v, vals) -> product_of_view ~corr v vals
    | None ->
      fun ca cb ->
        let raw = Bigarray.Array1.unsafe_get table ((ca lsl 8) lor cb) in
        raw - ((raw lsr 15) * corr)
  in
  let in_shape = Tensor.shape input in
  let images = Shape.(in_shape.n) in
  let out_buf = Tensor.buffer out in
  (* One plan for the whole batch; a chunk is a row range of it, lowered
     into the arena with [to_codes_range] — no per-chunk batch slice. *)
  let plan =
    Im2col.make in_shape ~kh:(Filter.kh filter) ~kw:(Filter.kw filter) ~spec
  in
  let rows_per_image = plan.Im2col.out_h * plan.Im2col.out_w in
  let patch_len = plan.Im2col.patch_len in
  let accumulator = config.accumulator in
  (* Per-view compressed tap-block workers, selected once per conv.
     These live outside [gemm_rows] on purpose: inlining all six decode
     loops into the same function as the raw loops measurably degrades
     the raw path's code generation (register pressure in the shared
     loop nest), and the call costs one indirect jump per *tile*, not
     per MAC.  Each worker runs the same r/p/k blocking as the raw arms
     over explicit tile bounds. *)
  let comp_wide_block =
    match comp_view with
    | None -> None
    | Some (view, vals) ->
      Some
        (match view with
        | Lc.Exact_view ->
          (* Exact-product multiplier: no table at all, the product is
             one integer multiply off two 256-entry code→value arrays. *)
          fun mp acc r0 r1 k0 k1 p0 p1 ->
            for r = r0 to r1 - 1 do
              let mp_base = r * patch_len in
              let acc_base = (r - r0) * out_c in
              for p = p0 to p1 - 1 do
                let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
                let va = Array.unsafe_get vals ca in
                let pf_base = p * out_c in
                for k = k0 to k1 - 1 do
                  let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                  let i = acc_base + k in
                  Array.unsafe_set acc i
                    (Array.unsafe_get acc i + (va * Array.unsafe_get vals cb))
                done
              done
            done
        | Lc.Masked_view { mask; _ } ->
          (* Result-masking multiplier: encode the exact product, mask,
             branch-free decode.  [decode_correction] in the view equals
             this conv's [corr] — same LUT. *)
          fun mp acc r0 r1 k0 k1 p0 p1 ->
            for r = r0 to r1 - 1 do
              let mp_base = r * patch_len in
              let acc_base = (r - r0) * out_c in
              for p = p0 to p1 - 1 do
                let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
                let va = Array.unsafe_get vals ca in
                let pf_base = p * out_c in
                for k = k0 to k1 - 1 do
                  let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                  let r_ = va * Array.unsafe_get vals cb land mask in
                  let i = acc_base + k in
                  Array.unsafe_set acc i
                    (Array.unsafe_get acc i + r_ - ((r_ lsr 15) * corr))
                done
              done
            done
        | Lc.Low_view { shift; amask; bmask; tbl } ->
          fun mp acc r0 r1 k0 k1 p0 p1 ->
            for r = r0 to r1 - 1 do
              let mp_base = r * patch_len in
              let acc_base = (r - r0) * out_c in
              for p = p0 to p1 - 1 do
                let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
                let va = Array.unsafe_get vals ca in
                let arow = (ca land amask) lsl shift in
                let pf_base = p * out_c in
                for k = k0 to k1 - 1 do
                  let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                  let d =
                    Bigarray.Array1.unsafe_get tbl (arow lor (cb land bmask))
                  in
                  let i = acc_base + k in
                  Array.unsafe_set acc i
                    (Array.unsafe_get acc i
                    + (va * Array.unsafe_get vals cb)
                    + d)
                done
              done
            done
        | Lc.Split_view { s; low_mask; high_mask; high_shift; d1; d2 } ->
          (* The trunc/BAM workhorse: ~6 kB of delta tables, both rows
             hoisted per tap, two L1 loads per MAC. *)
          fun mp acc r0 r1 k0 k1 p0 p1 ->
            for r = r0 to r1 - 1 do
              let mp_base = r * patch_len in
              let acc_base = (r - r0) * out_c in
              for p = p0 to p1 - 1 do
                let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
                let va = Array.unsafe_get vals ca in
                let a1 = ca lsl s in
                let a2 = (ca land high_mask) lsl high_shift in
                let pf_base = p * out_c in
                for k = k0 to k1 - 1 do
                  let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                  let d =
                    Bigarray.Array1.unsafe_get d1 (a1 lor (cb land low_mask))
                    + Bigarray.Array1.unsafe_get d2 (a2 lor (cb lsr s))
                  in
                  let i = acc_base + k in
                  Array.unsafe_set acc i
                    (Array.unsafe_get acc i
                    + (va * Array.unsafe_get vals cb)
                    + d)
                done
              done
            done
        | Lc.Nibble_view { hi; lo } ->
          fun mp acc r0 r1 k0 k1 p0 p1 ->
            for r = r0 to r1 - 1 do
              let mp_base = r * patch_len in
              let acc_base = (r - r0) * out_c in
              for p = p0 to p1 - 1 do
                let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
                let va = Array.unsafe_get vals ca in
                let h = (ca lsr 4) lsl 8 in
                let l = (ca land 15) lsl 8 in
                let pf_base = p * out_c in
                for k = k0 to k1 - 1 do
                  let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                  let d =
                    Bigarray.Array1.unsafe_get hi (h lor cb)
                    + Bigarray.Array1.unsafe_get lo (l lor cb)
                  in
                  let i = acc_base + k in
                  Array.unsafe_set acc i
                    (Array.unsafe_get acc i
                    + (va * Array.unsafe_get vals cb)
                    + d)
                done
              done
            done
        | Lc.Sparse_view { sym; bitmap; bases; pop; corr = scorr } ->
          (* Near-exact multiplier: the common case is a zero delta —
             one bitmap-byte probe — with the rank walk only on the
             rare hit. *)
          fun mp acc r0 r1 k0 k1 p0 p1 ->
            for r = r0 to r1 - 1 do
              let mp_base = r * patch_len in
              let acc_base = (r - r0) * out_c in
              for p = p0 to p1 - 1 do
                let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
                let va = Array.unsafe_get vals ca in
                let flip = sym && ca > 128 in
                let ca' = if flip then 256 - ca else ca in
                let pf_base = p * out_c in
                for k = k0 to k1 - 1 do
                  let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                  let cb' = if flip then (256 - cb) land 0xff else cb in
                  let idx = (ca' lsl 8) lor cb' in
                  let byte = Bigarray.Array1.unsafe_get bitmap (idx lsr 3) in
                  let bit = idx land 7 in
                  let d =
                    if (byte lsr bit) land 1 = 0 then 0
                    else begin
                      let g = idx lsr 5 in
                      let j = (idx land 31) lsr 3 in
                      let base = ref (Bigarray.Array1.unsafe_get bases g) in
                      for t = 0 to j - 1 do
                        base :=
                          !base
                          + Bigarray.Array1.unsafe_get pop
                              (Bigarray.Array1.unsafe_get bitmap
                                 ((g lsl 2) + t))
                      done;
                      Bigarray.Array1.unsafe_get scorr
                        (!base
                        + Bigarray.Array1.unsafe_get pop
                            (byte land ((1 lsl bit) - 1)))
                    end
                  in
                  let i = acc_base + k in
                  Array.unsafe_set acc i
                    (Array.unsafe_get acc i
                    + (va * Array.unsafe_get vals cb)
                    + d)
                done
              done
            done
        | Lc.Raw_view _ ->
          (* [comp_view] never holds a [Raw_view] — that case is
             normalised to [None] above. *)
          assert false)
  in
  let start = ref 0 in
  let chunk_idx = ref 0 in
  while !start < images do
    let count = min config.chunk_size (images - !start) in
    let row_lo = !start * rows_per_image in
    let chunk_rows = count * rows_per_image in
    let run_chunk () =
      let mp, sp =
        charge Profile.Quantization (fun () ->
            Im2col.to_codes_range ?pool ~domains:config.domains
              ~schedule:(Pool.dynamic ()) ~scratch plan input ~row_lo
              ~row_hi:(row_lo + chunk_rows) ~coeffs:coeffs1
              ~round_mode:config.round_mode ~signedness)
      in
      (* ApproxGEMM over buffer rows [lo, hi) of the chunk (buffer row
         [r] is plan row [row_lo + r]).  One output row is produced
         entirely by one worker, so splitting the row range across
         domains cannot change any result bit. *)
      let gemm_rows lo hi =
        let acc = Scratch.acc (Scratch.domain_local ()) (tile_rows * out_c) in
        let r0 = ref lo in
        while !r0 < hi do
          let r1 = min hi (!r0 + tile_rows) in
          let k0 = ref 0 in
          while !k0 < out_c do
            let k1 = min out_c (!k0 + tile_cols) in
            for r = !r0 to r1 - 1 do
              Array.fill acc (((r - !r0) * out_c) + !k0) (k1 - !k0) 0
            done;
            let p0 = ref 0 in
            while !p0 < taps do
              let p1 = min taps (!p0 + tile_taps) in
              (match (accumulator, comp_wide_block) with
              | Accumulator.Wide, None when corr = 0 ->
                (* Fastest path: unsigned LUT entries decode to
                   themselves, so the lookup is a bare table read. *)
                for r = !r0 to r1 - 1 do
                  let mp_base = (r * patch_len) in
                  let acc_base = (r - !r0) * out_c in
                  for p = !p0 to p1 - 1 do
                    let ca_sh =
                      Char.code (Bytes.unsafe_get mp (mp_base + p)) lsl 8
                    in
                    let pf_base = p * out_c in
                    for k = !k0 to k1 - 1 do
                      let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                      let raw =
                        Bigarray.Array1.unsafe_get table (ca_sh lor cb)
                      in
                      let i = acc_base + k in
                      Array.unsafe_set acc i (Array.unsafe_get acc i + raw)
                    done
                  done
                done
              | Accumulator.Wide, None ->
                (* Fast path: no per-step clamping, and the signed
                   decode is the branch-free [raw - sign_bit * corr]
                   (equal to [Lut.lookup_code] bit for bit). *)
                for r = !r0 to r1 - 1 do
                  let mp_base = (r * patch_len) in
                  let acc_base = (r - !r0) * out_c in
                  for p = !p0 to p1 - 1 do
                    let ca_sh =
                      Char.code (Bytes.unsafe_get mp (mp_base + p)) lsl 8
                    in
                    let pf_base = p * out_c in
                    for k = !k0 to k1 - 1 do
                      let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                      let raw =
                        Bigarray.Array1.unsafe_get table (ca_sh lor cb)
                      in
                      let i = acc_base + k in
                      Array.unsafe_set acc i
                        (Array.unsafe_get acc i + raw - ((raw lsr 15) * corr))
                    done
                  done
                done
              | Accumulator.Wide, Some block ->
                (* Compressed view: one indirect call per tile into the
                   per-view worker selected above. *)
                block mp acc !r0 r1 !k0 k1 !p0 p1
              | ( ( Accumulator.Saturating _ | Accumulator.Wrapping _
                  | Accumulator.Lower_or _ ),
                  None ) ->
                for r = !r0 to r1 - 1 do
                  let mp_base = (r * patch_len) in
                  let acc_base = (r - !r0) * out_c in
                  for p = !p0 to p1 - 1 do
                    let ca_sh =
                      Char.code (Bytes.unsafe_get mp (mp_base + p)) lsl 8
                    in
                    let pf_base = p * out_c in
                    for k = !k0 to k1 - 1 do
                      let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                      let raw =
                        Bigarray.Array1.unsafe_get table (ca_sh lor cb)
                      in
                      let v = raw - ((raw lsr 15) * corr) in
                      let i = acc_base + k in
                      Array.unsafe_set acc i
                        (Accumulator.add accumulator (Array.unsafe_get acc i)
                           v)
                    done
                  done
                done
              | ( ( Accumulator.Saturating _ | Accumulator.Wrapping _
                  | Accumulator.Lower_or _ ),
                  Some _ ) ->
                (* Checked accumulators clamp per step anyway, so the
                   generic per-view product closure costs little
                   relative to the existing arithmetic. *)
                for r = !r0 to r1 - 1 do
                  let mp_base = (r * patch_len) in
                  let acc_base = (r - !r0) * out_c in
                  for p = !p0 to p1 - 1 do
                    let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
                    let pf_base = p * out_c in
                    for k = !k0 to k1 - 1 do
                      let cb = Char.code (Bytes.unsafe_get pf (pf_base + k)) in
                      let v = product_code ca cb in
                      let i = acc_base + k in
                      Array.unsafe_set acc i
                        (Accumulator.add accumulator (Array.unsafe_get acc i)
                           v)
                    done
                  done
                done);
              p0 := p1
            done;
            (* Dequantize the finished block with the Eq. 4
               corrections — the same per-(row, channel) expression as
               ever, so the float bits cannot move. *)
            for r = !r0 to r1 - 1 do
              let sp_row = sp.(r) in
              let acc_base = (r - !r0) * out_c in
              let out_base = (row_lo + r) * out_c in
              for k = !k0 to k1 - 1 do
                let corrected =
                  acc.(acc_base + k) - (beta2.(k) * sp_row) - (beta1 * sf.(k))
                  + n_beta12.(k)
                in
                let v = alpha12.(k) *. float_of_int corrected in
                let v = match bias with Some b -> v +. b.(k) | None -> v in
                out_buf.{out_base + k} <- v
              done
            done;
            k0 := k1
          done;
          r0 := r1
        done
      in
      (* Chunk rows are claimed dynamically (a few tiles per claim):
         whichever domain finishes its tiles first steals the next
         range, so one slow domain no longer stalls the chunk.  Output
         rows are produced whole by their claiming domain, hence
         bit-identical for any domain count and either schedule. *)
      charge Profile.Lut (fun () ->
          match pool with
          | Some p ->
            Pool.parallel_for p ~max_domains:config.domains
              ~schedule:(Pool.Dynamic { grain = gemm_grain }) ~lo:0
              ~hi:chunk_rows (fun ~lo ~hi -> gemm_rows lo hi)
          | None -> gemm_rows 0 chunk_rows);
      (* Per-chunk accounting runs exactly once per chunk, on the
         coordinating domain, after the parallel region has joined — so
         a multi-chunk batch reports the sum over its chunks no matter
         how the rows were split. *)
      (match profile with
      | Some p ->
        Profile.count_lut_lookups p (chunk_rows * out_c * taps);
        Profile.count_macs p (chunk_rows * out_c * taps)
      | None -> ());
      note "im2col_bytes" (chunk_rows * patch_len);
      note "chunks" 1
    in
    (* Only build the chunk span (and its attribute strings) when a
       profile is actually attached — the hot loop must not allocate per
       chunk just to describe itself.  The per-chunk latency histogram
       rides the same guard. *)
    (match profile with
    | Some p ->
      let chunk_start = Unix.gettimeofday () in
      Profile.span p ~name:"axconv.chunk"
        ~attrs:
          [
            ("chunk", string_of_int !chunk_idx);
            ("images", string_of_int count);
          ]
        run_chunk;
      Profile.observe p "gemm_chunk_seconds"
        (Unix.gettimeofday () -. chunk_start)
    | None -> run_chunk ());
    start := !start + count;
    incr chunk_idx
  done;
  (match (profile, pool) with
  | Some p, Some pl -> Pool.publish pl (Profile.metrics p)
  | (Some _ | None), _ -> ());
  out
