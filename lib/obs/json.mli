(** Minimal JSON tree, printer and parser.

    The observability exports (Chrome traces, metrics snapshots) must be
    machine-readable and round-trip testable without external packages,
    so this module is self-contained: a compact printer that always
    emits valid JSON (non-finite floats become [null]) and a strict
    recursive-descent parser for the same grammar. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val parse : string -> t
(** Strict parse of one JSON document (trailing garbage is an error).
    Raises {!Parse_error}. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] on missing keys and non-objects. *)

val get_string : t -> string option
val get_int : t -> int option

val get_float : t -> float option
(** Accepts both [Int] and [Float] nodes. *)

val get_list : t -> t list option
