let mul8u a b =
  if a < 0 || a > 255 || b < 0 || b > 255 then
    invalid_arg "Exact.mul8u: operand out of range";
  a * b

let mul8s a b =
  if a < -128 || a > 127 || b < -128 || b > 127 then
    invalid_arg "Exact.mul8s: operand out of range";
  a * b

let signed_of_unsigned mulu a b =
  let sign = (if a < 0 then -1 else 1) * if b < 0 then -1 else 1 in
  sign * mulu (abs a) (abs b)
