module Graph = Ax_nn.Graph
module Shape = Ax_tensor.Shape
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Depthwise = Ax_nn.Depthwise
module D = Diagnostic

type kind = Tensor | Scalar

let out_kind = function
  | Graph.Const_scalar _ | Graph.Min_reduce | Graph.Max_reduce -> Scalar
  | Graph.Input | Graph.Conv2d _ | Graph.Ax_conv2d _
  | Graph.Depthwise_conv2d _ | Graph.Ax_depthwise_conv2d _ | Graph.Relu
  | Graph.Max_pool _ | Graph.Global_avg_pool | Graph.Dense _
  | Graph.Batch_norm _ | Graph.Add | Graph.Softmax | Graph.Shortcut_pad _ ->
    Tensor

let in_kinds = function
  | Graph.Ax_conv2d _ | Graph.Ax_depthwise_conv2d _ ->
    [ Tensor; Scalar; Scalar; Scalar; Scalar ]
  | Graph.Add -> [ Tensor; Tensor ]
  | Graph.Input | Graph.Const_scalar _ -> []
  | Graph.Conv2d _ | Graph.Depthwise_conv2d _ | Graph.Min_reduce
  | Graph.Max_reduce | Graph.Relu | Graph.Max_pool _ | Graph.Global_avg_pool
  | Graph.Dense _ | Graph.Batch_norm _ | Graph.Softmax | Graph.Shortcut_pad _
    ->
    [ Tensor ]

let kind_name = function Tensor -> "tensor" | Scalar -> "scalar"

let check ?input g =
  let nodes = Graph.nodes g in
  let n = Array.length nodes in
  let diags = ref [] in
  let emit ~rule ?location msg = diags := D.make ~rule ?location msg :: !diags in
  let loc (node : Graph.node) =
    D.Graph_node { id = node.Graph.id; name = node.Graph.name }
  in
  let describe i =
    if i >= 0 && i < n then
      Printf.sprintf "node %d (%s, %s)" i nodes.(i).Graph.name
        (Graph.op_name nodes.(i).Graph.op)
    else Printf.sprintf "node %d" i
  in

  (* --- structure: ids, ordering, arity --- *)
  let structurally_ok = Array.make n true in
  Array.iteri
    (fun i node ->
      if node.Graph.id <> i then begin
        structurally_ok.(i) <- false;
        emit ~rule:"graph/dangling-input" ~location:(loc node)
          (Printf.sprintf "node id %d stored at position %d" node.Graph.id i)
      end;
      let bad =
        List.filter (fun id -> id < 0 || id >= i) node.Graph.inputs
      in
      if bad <> [] then begin
        structurally_ok.(i) <- false;
        emit ~rule:"graph/dangling-input" ~location:(loc node)
          (Printf.sprintf "references %s %s (nodes are topologically ordered)"
             (if List.length bad = 1 then "unknown or forward input"
              else "unknown or forward inputs")
             (String.concat ", " (List.map string_of_int bad)))
      end;
      let want = Graph.arity node.Graph.op in
      let got = List.length node.Graph.inputs in
      if got <> want then begin
        structurally_ok.(i) <- false;
        emit ~rule:"graph/arity" ~location:(loc node)
          (Printf.sprintf "%s takes %d input(s), %d given"
             (Graph.op_name node.Graph.op)
             want got)
      end)
    nodes;

  (* --- input placeholders --- *)
  let input_nodes =
    Array.to_list nodes
    |> List.filter (fun node ->
           match node.Graph.op with
           | Graph.Input -> true
           | Graph.Conv2d _ | Graph.Ax_conv2d _ | Graph.Depthwise_conv2d _
           | Graph.Ax_depthwise_conv2d _ | Graph.Min_reduce | Graph.Max_reduce
           | Graph.Const_scalar _ | Graph.Relu | Graph.Max_pool _
           | Graph.Global_avg_pool | Graph.Dense _ | Graph.Batch_norm _
           | Graph.Add | Graph.Softmax | Graph.Shortcut_pad _ ->
             false)
  in
  (match input_nodes with
  | [] -> emit ~rule:"graph/no-input" "graph has no Input placeholder"
  | [ _ ] -> ()
  | _ :: extras ->
    List.iter
      (fun node ->
        emit ~rule:"graph/multi-input" ~location:(loc node)
          "additional Input placeholder (the executor binds every Input \
           to the same tensor)")
      extras);

  (* --- output node --- *)
  let out_id = Graph.output g in
  if out_id < 0 || out_id >= n then
    emit ~rule:"graph/dangling-input"
      (Printf.sprintf "output id %d is not a node" out_id)
  else if out_kind nodes.(out_id).Graph.op = Scalar then
    emit ~rule:"graph/scalar-output"
      ~location:(loc nodes.(out_id))
      (Printf.sprintf "graph output is %s" (describe out_id));

  (* --- reachability (dead nodes) --- *)
  (* A single broken reference already makes reachability unreliable
     (the traversal cannot follow the missing edge), so the pass only
     runs on structurally clean graphs — one broken edge must yield one
     diagnostic, not a trail of phantom dead nodes. *)
  let structure_clean = Array.for_all (fun ok -> ok) structurally_ok in
  if structure_clean && out_id >= 0 && out_id < n then begin
    let reached = Array.make n false in
    let rec visit i =
      if i >= 0 && i < n && not reached.(i) then begin
        reached.(i) <- true;
        List.iter visit nodes.(i).Graph.inputs
      end
    in
    visit out_id;
    Array.iteri
      (fun i node ->
        if not reached.(i) then
          emit ~rule:"graph/dead-node" ~location:(loc node)
            "never contributes to the graph output")
      nodes
  end;

  (* --- value kinds at every port --- *)
  let kinds_ok = Array.make n true in
  Array.iteri
    (fun i node ->
      if structurally_ok.(i) then
        List.iteri
          (fun port (want, src) ->
            let actual = out_kind nodes.(src).Graph.op in
            if actual <> want then begin
              kinds_ok.(i) <- false;
              let rule =
                match want with
                | Tensor -> "graph/scalar-as-tensor"
                | Scalar -> "graph/tensor-as-scalar"
              in
              emit ~rule ~location:(loc node)
                (Printf.sprintf "input %d is %s, which is %s-valued" port
                   (describe src) (kind_name actual))
            end)
          (List.combine (in_kinds node.Graph.op) node.Graph.inputs))
    nodes;

  (* --- Fig. 1 wiring lint --- *)
  let const_of i =
    match nodes.(i).Graph.op with
    | Graph.Const_scalar v -> Some v
    | Graph.Input | Graph.Conv2d _ | Graph.Ax_conv2d _
    | Graph.Depthwise_conv2d _ | Graph.Ax_depthwise_conv2d _
    | Graph.Min_reduce | Graph.Max_reduce | Graph.Relu | Graph.Max_pool _
    | Graph.Global_avg_pool | Graph.Dense _ | Graph.Batch_norm _ | Graph.Add
    | Graph.Softmax | Graph.Shortcut_pad _ ->
      None
  in
  let lint_ax node ~filter =
    match node.Graph.inputs with
    | [ data; imin; imax; fmin; fmax ] ->
      let reduce_src i =
        match nodes.(i).Graph.inputs with [ s ] -> Some s | [] | _ :: _ -> None
      in
      let swapped =
        (match nodes.(imin).Graph.op with Graph.Max_reduce -> true | _ -> false)
        && match nodes.(imax).Graph.op with
           | Graph.Min_reduce -> true
           | _ -> false
      in
      if swapped then
        emit ~rule:"ax/swapped-range" ~location:(loc node)
          (Printf.sprintf "input range ports read %s and %s in that order"
             (describe imin) (describe imax))
      else begin
        (match nodes.(imin).Graph.op with
        | Graph.Min_reduce -> (
          match reduce_src imin with
          | Some src when src <> data ->
            emit ~rule:"ax/wrong-tensor" ~location:(loc node)
              (Printf.sprintf
                 "min reduction %s reads %s but the layer data is %s"
                 (describe imin) (describe src) (describe data))
          | Some _ | None -> ())
        | Graph.Const_scalar _ -> ()
        | Graph.Max_reduce | Graph.Input | Graph.Conv2d _ | Graph.Ax_conv2d _
        | Graph.Depthwise_conv2d _ | Graph.Ax_depthwise_conv2d _ | Graph.Relu
        | Graph.Max_pool _ | Graph.Global_avg_pool | Graph.Dense _
        | Graph.Batch_norm _ | Graph.Add | Graph.Softmax
        | Graph.Shortcut_pad _ ->
          emit ~rule:"ax/min-feed" ~location:(loc node)
            (Printf.sprintf "input-range minimum comes from %s"
               (describe imin)));
        (match nodes.(imax).Graph.op with
        | Graph.Max_reduce -> (
          match reduce_src imax with
          | Some src when src <> data ->
            emit ~rule:"ax/wrong-tensor" ~location:(loc node)
              (Printf.sprintf
                 "max reduction %s reads %s but the layer data is %s"
                 (describe imax) (describe src) (describe data))
          | Some _ | None -> ())
        | Graph.Const_scalar _ -> ()
        | Graph.Min_reduce | Graph.Input | Graph.Conv2d _ | Graph.Ax_conv2d _
        | Graph.Depthwise_conv2d _ | Graph.Ax_depthwise_conv2d _ | Graph.Relu
        | Graph.Max_pool _ | Graph.Global_avg_pool | Graph.Dense _
        | Graph.Batch_norm _ | Graph.Add | Graph.Softmax
        | Graph.Shortcut_pad _ ->
          emit ~rule:"ax/max-feed" ~location:(loc node)
            (Printf.sprintf "input-range maximum comes from %s"
               (describe imax)))
      end;
      (match (const_of imin, const_of imax) with
      | Some lo, Some hi when lo > hi ->
        emit ~rule:"ax/empty-range" ~location:(loc node)
          (Printf.sprintf "constant input range [%g, %g] is empty" lo hi)
      | Some _, Some _ ->
        emit ~rule:"ax/const-input-range" ~location:(loc node)
          "input range is constant rather than computed per batch"
      | Some _, None | None, Some _ ->
        emit ~rule:"ax/const-input-range" ~location:(loc node)
          "input range mixes a constant with a reduction"
      | None, None -> ());
      (match (const_of fmin, const_of fmax) with
      | Some lo, Some hi ->
        if lo > hi then
          emit ~rule:"ax/empty-range" ~location:(loc node)
            (Printf.sprintf "constant filter range [%g, %g] is empty" lo hi)
        else begin
          let amin, amax = Filter.min_max filter in
          if lo > amin || hi < amax then
            emit ~rule:"ax/filter-range-stale" ~location:(loc node)
              (Printf.sprintf
                 "constant filter range [%g, %g] does not cover the actual \
                  weight range [%g, %g]"
                 lo hi amin amax)
        end
      | (Some _ | None), _ -> ())
    | _ -> () (* arity already reported *)
  in
  Array.iteri
    (fun i node ->
      if structurally_ok.(i) && kinds_ok.(i) then
        match node.Graph.op with
        | Graph.Ax_conv2d { filter; _ } | Graph.Ax_depthwise_conv2d { filter; _ }
          ->
          lint_ax node ~filter
        | Graph.Input | Graph.Conv2d _ | Graph.Depthwise_conv2d _
        | Graph.Min_reduce | Graph.Max_reduce | Graph.Const_scalar _
        | Graph.Relu | Graph.Max_pool _ | Graph.Global_avg_pool | Graph.Dense _
        | Graph.Batch_norm _ | Graph.Add | Graph.Softmax | Graph.Shortcut_pad _
          ->
          ())
    nodes;

  (* --- shape-and-channel inference --- *)
  (match input with
  | None -> ()
  | Some input_shape ->
    (* [shapes.(i)] is the inferred tensor shape (None for scalars);
       [valid.(i)] false poisons consumers so one defect is reported
       once, at its source. *)
    let shapes : Shape.t option array = Array.make n None in
    let valid = Array.make n false in
    let bias_check node ~len = function
      | Some b when Array.length b <> len ->
        emit ~rule:"graph/bias-arity" ~location:(loc node)
          (Printf.sprintf "bias has %d entries for %d output channels"
             (Array.length b) len)
      | Some _ | None -> ()
    in
    Array.iteri
      (fun i node ->
        if
          structurally_ok.(i) && kinds_ok.(i)
          && List.for_all (fun s -> valid.(s)) node.Graph.inputs
        then begin
          let data_shape () =
            match shapes.(List.nth node.Graph.inputs 0) with
            | Some s -> s
            | None -> invalid_arg "scalar where a tensor is required"
          in
          let infer () =
            match node.Graph.op with
            | Graph.Input -> Some input_shape
            | Graph.Const_scalar _ | Graph.Min_reduce | Graph.Max_reduce ->
              None
            | Graph.Conv2d { filter; bias; spec } ->
              bias_check node ~len:(Filter.out_c filter) bias;
              Some (Conv_spec.output_shape spec (data_shape ()) filter)
            | Graph.Ax_conv2d { filter; bias; spec; _ } ->
              bias_check node ~len:(Filter.out_c filter) bias;
              Some (Conv_spec.output_shape spec (data_shape ()) filter)
            | Graph.Depthwise_conv2d { filter; bias; spec }
            | Graph.Ax_depthwise_conv2d { filter; bias; spec; _ } ->
              bias_check node ~len:(Filter.in_c filter * Filter.out_c filter)
                bias;
              Some (Depthwise.output_shape ~spec (data_shape ()) filter)
            | Graph.Relu | Graph.Softmax -> Some (data_shape ())
            | Graph.Batch_norm { scale; shift } ->
              let s = data_shape () in
              if
                Array.length scale <> Shape.(s.c)
                || Array.length shift <> Shape.(s.c)
              then
                invalid_arg
                  (Printf.sprintf
                     "batch-norm parameters have %d/%d entries for %d \
                      channels"
                     (Array.length scale) (Array.length shift) Shape.(s.c));
              Some s
            | Graph.Max_pool { size; stride } ->
              let s = data_shape () in
              if size <= 0 || stride <= 0 then
                invalid_arg "pool size and stride must be positive";
              if Shape.(s.h) < size || Shape.(s.w) < size then
                invalid_arg
                  (Printf.sprintf "%dx%d window over %dx%d input" size size
                     Shape.(s.h) Shape.(s.w));
              Some
                (Shape.make ~n:Shape.(s.n)
                   ~h:(((Shape.(s.h) - size) / stride) + 1)
                   ~w:(((Shape.(s.w) - size) / stride) + 1)
                   ~c:Shape.(s.c))
            | Graph.Global_avg_pool ->
              let s = data_shape () in
              Some (Shape.make ~n:Shape.(s.n) ~h:1 ~w:1 ~c:Shape.(s.c))
            | Graph.Dense { weights; bias } ->
              let s = data_shape () in
              let features = Shape.(s.h) * Shape.(s.w) * Shape.(s.c) in
              if weights.Ax_tensor.Matrix.rows <> features then
                invalid_arg
                  (Printf.sprintf "%d features but weights have %d rows"
                     features weights.Ax_tensor.Matrix.rows);
              if Array.length bias <> weights.Ax_tensor.Matrix.cols then
                emit ~rule:"graph/bias-arity" ~location:(loc node)
                  (Printf.sprintf "bias has %d entries for %d outputs"
                     (Array.length bias) weights.Ax_tensor.Matrix.cols);
              Some
                (Shape.make ~n:Shape.(s.n) ~h:1 ~w:1
                   ~c:weights.Ax_tensor.Matrix.cols)
            | Graph.Add ->
              let a = data_shape () in
              let b =
                match shapes.(List.nth node.Graph.inputs 1) with
                | Some s -> s
                | None -> invalid_arg "scalar where a tensor is required"
              in
              if not (Shape.equal a b) then
                invalid_arg
                  (Printf.sprintf "residual join of %s with %s"
                     (Shape.to_string a) (Shape.to_string b));
              Some a
            | Graph.Shortcut_pad { stride; out_c } ->
              let s = data_shape () in
              if stride <= 0 then invalid_arg "shortcut stride must be positive";
              if out_c < Shape.(s.c) then
                invalid_arg
                  (Printf.sprintf "shortcut cannot shrink %d channels to %d"
                     Shape.(s.c) out_c);
              Some
                (Shape.make ~n:Shape.(s.n)
                   ~h:((Shape.(s.h) + stride - 1) / stride)
                   ~w:((Shape.(s.w) + stride - 1) / stride)
                   ~c:out_c)
          in
          match infer () with
          | s ->
            shapes.(i) <- s;
            valid.(i) <- true
          | exception (Invalid_argument m | Failure m) ->
            emit ~rule:"graph/shape-mismatch" ~location:(loc node) m
        end)
      nodes);

  List.rev !diags
