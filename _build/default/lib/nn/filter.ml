type t = {
  kh : int;
  kw : int;
  in_c : int;
  out_c : int;
  data : float array;  (* HWCK, K fastest *)
}

let create ~kh ~kw ~in_c ~out_c =
  if kh <= 0 || kw <= 0 || in_c <= 0 || out_c <= 0 then
    invalid_arg "Filter.create: non-positive extent";
  { kh; kw; in_c; out_c; data = Array.make (kh * kw * in_c * out_c) 0. }

let kh t = t.kh
let kw t = t.kw
let in_c t = t.in_c
let out_c t = t.out_c
let taps t = t.kh * t.kw * t.in_c
let num_weights t = Array.length t.data
let offset t ~h ~w ~c ~k = ((((h * t.kw) + w) * t.in_c + c) * t.out_c) + k

let get t ~h ~w ~c ~k =
  if h < 0 || h >= t.kh || w < 0 || w >= t.kw || c < 0 || c >= t.in_c
     || k < 0 || k >= t.out_c
  then invalid_arg "Filter.get: index out of range";
  t.data.(offset t ~h ~w ~c ~k)

let set t ~h ~w ~c ~k v =
  if h < 0 || h >= t.kh || w < 0 || w >= t.kw || c < 0 || c >= t.in_c
     || k < 0 || k >= t.out_c
  then invalid_arg "Filter.set: index out of range";
  t.data.(offset t ~h ~w ~c ~k) <- v

let of_array ~kh ~kw ~in_c ~out_c data =
  let t = create ~kh ~kw ~in_c ~out_c in
  if Array.length data <> Array.length t.data then
    invalid_arg
      (Printf.sprintf "Filter.of_array: %d values for %dx%dx%dx%d"
         (Array.length data) kh kw in_c out_c);
  Array.blit data 0 t.data 0 (Array.length data);
  t

let to_array t = Array.copy t.data

let min_max t =
  let mn = ref t.data.(0) and mx = ref t.data.(0) in
  Array.iter
    (fun v ->
      if v < !mn then mn := v;
      if v > !mx then mx := v)
    t.data;
  (!mn, !mx)

let fill_he_normal rng t =
  let stddev = sqrt (2. /. float_of_int (taps t)) in
  Array.iteri
    (fun i _ -> t.data.(i) <- stddev *. Ax_tensor.Rng.gaussian rng)
    t.data

let macs_per_position t = taps t * t.out_c

let raw_data t = t.data
let tap_index t ~h ~w ~c = ((h * t.kw) + w) * t.in_c + c

let iter t f =
  for h = 0 to t.kh - 1 do
    for w = 0 to t.kw - 1 do
      for c = 0 to t.in_c - 1 do
        for k = 0 to t.out_c - 1 do
          f ~h ~w ~c ~k t.data.(offset t ~h ~w ~c ~k)
        done
      done
    done
  done
