module Shape = Ax_tensor.Shape
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Graph = Ax_nn.Graph
module Profile = Ax_nn.Profile

type conv_workload = {
  label : string;
  images : int;
  rows_per_image : int;
  taps : int;
  out_c : int;
  in_elems_per_image : int;
  out_elems_per_image : int;
  filter_elems : int;
}

let workload ?(label = "conv") ~input ~filter ~spec ~images () =
  let out = Conv_spec.output_shape spec input filter in
  {
    label;
    images;
    rows_per_image = Shape.(out.h) * Shape.(out.w);
    taps = Filter.taps filter;
    out_c = Filter.out_c filter;
    in_elems_per_image = Shape.(input.h) * Shape.(input.w) * Shape.(input.c);
    out_elems_per_image = Shape.(out.h) * Shape.(out.w) * Shape.(out.c);
    filter_elems = Filter.num_weights filter;
  }

let workloads_of_graph g ~input ~images =
  let shapes = Array.of_list (List.map snd (Graph.infer_shapes g ~input)) in
  List.filter_map
    (fun n ->
      match n.Graph.op with
      | Graph.Conv2d { filter; spec; _ } | Graph.Ax_conv2d { filter; spec; _ }
        ->
        let in_shape =
          match shapes.(List.nth n.Graph.inputs 0) with
          | Some s -> s
          | None -> invalid_arg "Cost.workloads_of_graph: conv over scalar"
        in
        Some (workload ~label:n.Graph.name ~input:in_shape ~filter ~spec ~images ())
      | Graph.Depthwise_conv2d { filter; spec; _ }
      | Graph.Ax_depthwise_conv2d { filter; spec; _ } ->
        let in_shape =
          match shapes.(List.nth n.Graph.inputs 0) with
          | Some s -> s
          | None -> invalid_arg "Cost.workloads_of_graph: conv over scalar"
        in
        let out = Ax_nn.Depthwise.output_shape ~spec in_shape filter in
        Some
          {
            label = n.Graph.name;
            images;
            rows_per_image = Shape.(out.h) * Shape.(out.w);
            taps = Filter.kh filter * Filter.kw filter;
            out_c = Shape.(out.c);
            in_elems_per_image =
              Shape.(in_shape.h) * Shape.(in_shape.w) * Shape.(in_shape.c);
            out_elems_per_image = Shape.(out.h) * Shape.(out.w) * Shape.(out.c);
            filter_elems = Filter.num_weights filter;
          }
      | Graph.Input | Graph.Min_reduce | Graph.Max_reduce
      | Graph.Const_scalar _ | Graph.Relu | Graph.Max_pool _
      | Graph.Global_avg_pool | Graph.Dense _ | Graph.Batch_norm _
      | Graph.Add | Graph.Softmax | Graph.Shortcut_pad _ ->
        None)
    (Array.to_list (Graph.nodes g))

let lut_lookups w =
  float_of_int w.images *. float_of_int w.rows_per_image
  *. float_of_int w.taps *. float_of_int w.out_c

let total_macs ws = List.fold_left (fun acc w -> acc +. lut_lookups w) 0. ws

type phases = {
  init_s : float;
  quantization_s : float;
  lut_s : float;
  other_s : float;
}

let zero = { init_s = 0.; quantization_s = 0.; lut_s = 0.; other_s = 0. }
let total p = p.init_s +. p.quantization_s +. p.lut_s +. p.other_s

let add a b =
  {
    init_s = a.init_s +. b.init_s;
    quantization_s = a.quantization_s +. b.quantization_s;
    lut_s = a.lut_s +. b.lut_s;
    other_s = a.other_s +. b.other_s;
  }

let breakdown p =
  let t = total p in
  if t <= 0. then
    {
      Profile.init_pct = 0.;
      quantization_pct = 0.;
      lut_pct = 0.;
      other_pct = 0.;
    }
  else
    {
      Profile.init_pct = 100. *. p.init_s /. t;
      quantization_pct = 100. *. p.quantization_s /. t;
      lut_pct = 100. *. p.lut_s /. t;
      other_pct = 100. *. p.other_s /. t;
    }

let gb = 1e9

let transfer_init d ~dataset_bytes ~weight_bytes =
  let xfer =
    (dataset_bytes +. weight_bytes +. float_of_int Ax_arith.Lut.size_bytes)
    /. (d.Device.pcie_bandwidth_gbps *. gb)
  in
  { zero with init_s = d.Device.context_setup_s +. xfer }

(* GEMM tile edge used for shared-memory traffic accounting; matches the
   32x32 tiles typical of a tuned kernel. *)
let tile = 32.

(* Per-layer reusable quantities. *)
let images w = float_of_int w.images
let rows w = images w *. float_of_int w.rows_per_image

let patch_bytes w = rows w *. float_of_int w.taps (* one byte per code *)

(* cuDNN-style accurate convolution: implicit-GEMM float kernel. *)
let accurate_layer d w =
  let macs = lut_lookups w in
  let compute = macs /. (Device.peak_flops d *. d.Device.gemm_efficiency) in
  (* float input read + float output write, streamed near peak *)
  let traffic =
    4. *. (images w *. float_of_int (w.in_elems_per_image + w.out_elems_per_image))
  in
  let mem = traffic /. (d.Device.mem_bandwidth_gbps *. gb *. 0.7) in
  { zero with other_s = Float.max compute mem }

let accurate_network d ws =
  let body = List.fold_left (fun acc w -> add acc (accurate_layer d w)) zero ws in
  let launches =
    float_of_int (List.length ws) *. d.Device.kernel_launch_overhead_s
  in
  add body { zero with other_s = launches }

(* The AxConv2D pipeline for one layer, per Algorithm 1:
   - min/max reduction over the input (quantization phase);
   - Im2Cols: read floats, quantize to codes, write the patch matrix and
     the Sp prefix sums (quantize pass charged to quantization, patch
     expansion to other);
   - ApproxGEMM: tile loads + one LUT fetch per MAC (lut phase) + index
     stitching and accumulation ALU work (other);
   - dequantization with Eq. 4 corrections (quantization phase). *)
let approx_layer d ~hit_rate w =
  let bw = d.Device.mem_bandwidth_gbps *. gb in
  let in_bytes = 4. *. images w *. float_of_int w.in_elems_per_image in
  let out_bytes = 4. *. images w *. float_of_int w.out_elems_per_image in
  (* min/max: tree reduction, streams the input once near peak. *)
  let minmax_s = in_bytes /. (bw *. 0.7) in
  (* quantize pass of Im2Cols: elementwise read-float/write-code with
     scan bookkeeping — latency-bound, hence the low efficiency. *)
  let quantize_s =
    (in_bytes +. (in_bytes /. 4.))
    /. (bw *. d.Device.elementwise_efficiency)
  in
  (* patch expansion: each code lands in the patch matrix once; GEMM
     re-reads each tile column out_c/tile times. *)
  let expand_bytes =
    patch_bytes w *. (1. +. Float.max 1. (float_of_int w.out_c /. tile))
  in
  let expand_s = expand_bytes /. (bw *. 0.5) in
  (* LUT fetches through the texture path. *)
  let lookups = lut_lookups w in
  let miss_rate = 1. -. hit_rate in
  let lut_s =
    lookups
    /. Device.peak_lut_rate d
    *. (1. +. (miss_rate *. d.Device.tex_miss_penalty_factor))
  in
  (* Index stitching + 32-bit accumulate: ~4 ALU ops per MAC. *)
  let alu_s =
    4. *. lookups /. (Device.peak_flops d *. d.Device.gemm_efficiency)
  in
  (* Dequantize + Eq.4 corrections: one fused pass over the output. *)
  let dequant_s = out_bytes /. (bw *. d.Device.elementwise_efficiency *. 4.) in
  {
    init_s = 0.;
    quantization_s = minmax_s +. quantize_s +. dequant_s;
    lut_s;
    other_s = expand_s +. alu_s;
  }

let approx_network d ?(lut_hit_rate = 0.9) ~chunk_size ws =
  if chunk_size <= 0 then invalid_arg "Cost.approx_network: chunk_size";
  if lut_hit_rate < 0. || lut_hit_rate > 1. then
    invalid_arg "Cost.approx_network: lut_hit_rate out of [0,1]";
  let body =
    List.fold_left
      (fun acc w -> add acc (approx_layer d ~hit_rate:lut_hit_rate w))
      zero ws
  in
  (* Four kernels per layer per chunk: minmax, im2col, gemm, dequant. *)
  let launches =
    List.fold_left
      (fun acc w ->
        let chunks = (w.images + chunk_size - 1) / chunk_size in
        acc +. (4. *. float_of_int chunks))
      0. ws
  in
  add body { zero with other_s = launches *. d.Device.kernel_launch_overhead_s }

let per_layer d ?(lut_hit_rate = 0.9) ~chunk_size ws =
  if chunk_size <= 0 then invalid_arg "Cost.per_layer: chunk_size";
  List.map
    (fun w ->
      let body = approx_layer d ~hit_rate:lut_hit_rate w in
      let chunks = (w.images + chunk_size - 1) / chunk_size in
      let launches = 4. *. float_of_int chunks in
      ( w.label,
        add body
          { zero with other_s = launches *. d.Device.kernel_launch_overhead_s }
      ))
    ws

let measure_hit_rate ?metrics d ~mp ~mf_t ~rows ~taps ~out_c ~sample_rows =
  if Bytes.length mp < rows * taps then
    invalid_arg "Cost.measure_hit_rate: mp smaller than rows*taps";
  if Bytes.length mf_t < out_c * taps then
    invalid_arg "Cost.measure_hit_rate: mf_t smaller than out_c*taps";
  let cache = Texcache.of_device d in
  let sample = min sample_rows rows in
  (* Replay in tiled order: for each row tile x filter, walk the
     reduction dimension — the order the GEMM kernel issues fetches. *)
  for row = 0 to sample - 1 do
    for k = 0 to out_c - 1 do
      for p = 0 to taps - 1 do
        let ca = Bytes.get_uint8 mp ((row * taps) + p) in
        let cb = Bytes.get_uint8 mf_t ((k * taps) + p) in
        ignore (Texcache.access cache (Texcache.lut_address ca cb))
      done
    done
  done;
  Option.iter (Texcache.publish cache) metrics;
  Texcache.hit_rate cache
