examples/multiplier_explorer.ml: Ax_arith Ax_data Ax_gpusim Ax_models Ax_netlist Format List Tfapprox
