(* Graph IR, the Fig. 1 transform, the executor and the layer zoo. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Matrix = Ax_tensor.Matrix
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Graph = Ax_nn.Graph
module Nn_error = Ax_nn.Nn_error
module Transform = Ax_nn.Transform
module Exec = Ax_nn.Exec
module Layers = Ax_nn.Layers
module Conv_float = Ax_nn.Conv_float
module Axconv = Ax_nn.Axconv
module Profile = Ax_nn.Profile
module Registry = Ax_arith.Registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-5))

let random_filter ~seed ~kh ~kw ~in_c ~out_c =
  let f = Filter.create ~kh ~kw ~in_c ~out_c in
  Filter.fill_he_normal (Rng.create seed) f;
  f

let exact_config () =
  Axconv.make_config (Registry.lut (Registry.find_exn "mul8s_exact"))

(* A single-conv graph, as in Fig. 1 (left). *)
let single_conv_graph () =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let filter = random_filter ~seed:1 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let conv =
    Graph.add b ~name:"conv1"
      (Graph.Conv2d { filter; bias = None; spec = Conv_spec.default })
      [ input ]
  in
  let relu = Graph.add b ~name:"relu1" Graph.Relu [ conv ] in
  Graph.finalize b ~output:relu

(* --- layers --- *)

let test_relu () =
  let t = Tensor.of_array (Shape.make ~n:1 ~h:1 ~w:4 ~c:1) [| -1.; 0.; 2.; -3. |] in
  Alcotest.(check (array (float 1e-9))) "relu" [| 0.; 0.; 2.; 0. |]
    (Tensor.to_array (Layers.relu t))

let test_max_pool () =
  let t =
    Tensor.of_array (Shape.make ~n:1 ~h:4 ~w:4 ~c:1)
      (Array.init 16 float_of_int)
  in
  let p = Layers.max_pool ~size:2 ~stride:2 t in
  Alcotest.(check (array (float 1e-9))) "2x2/2 pool" [| 5.; 7.; 13.; 15. |]
    (Tensor.to_array p)

let test_global_avg_pool () =
  let t =
    Tensor.of_array (Shape.make ~n:2 ~h:2 ~w:2 ~c:1)
      [| 1.; 2.; 3.; 4.; 10.; 20.; 30.; 40. |]
  in
  let p = Layers.global_avg_pool t in
  Alcotest.(check (array (float 1e-9))) "gap" [| 2.5; 25. |]
    (Tensor.to_array p)

let test_batch_norm_and_fold () =
  let t = Tensor.of_array (Shape.make ~n:1 ~h:1 ~w:2 ~c:2) [| 1.; 2.; 3.; 4. |] in
  let out = Layers.batch_norm ~scale:[| 2.; 10. |] ~shift:[| 0.; 1. |] t in
  Alcotest.(check (array (float 1e-9))) "bn" [| 2.; 21.; 6.; 41. |]
    (Tensor.to_array out);
  let scale, shift =
    Layers.fold_batch_norm ~gamma:[| 1. |] ~beta:[| 0.5 |] ~mean:[| 2. |]
      ~variance:[| 4. |] ~epsilon:0.
  in
  check_float "folded scale" 0.5 scale.(0);
  check_float "folded shift" (-0.5) shift.(0)

let test_dense () =
  let t = Tensor.of_array (Shape.make ~n:1 ~h:1 ~w:1 ~c:3) [| 1.; 2.; 3. |] in
  let weights = Matrix.of_arrays [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
  let out = Layers.dense ~weights ~bias:[| 0.; 10. |] t in
  Alcotest.(check (array (float 1e-9))) "dense" [| 4.; 15. |]
    (Tensor.to_array out)

let test_softmax_properties () =
  let t =
    Tensor.of_array (Shape.make ~n:2 ~h:1 ~w:1 ~c:3)
      [| 1.; 2.; 3.; 100.; 100.; 100. |]
  in
  let s = Layers.softmax t in
  let row0 = [| Tensor.get s ~n:0 ~h:0 ~w:0 ~c:0; Tensor.get s ~n:0 ~h:0 ~w:0 ~c:1; Tensor.get s ~n:0 ~h:0 ~w:0 ~c:2 |] in
  check_float "sums to 1" 1. (Array.fold_left ( +. ) 0. row0);
  check_bool "monotone" true (row0.(0) < row0.(1) && row0.(1) < row0.(2));
  check_float "uniform on equal logits" (1. /. 3.)
    (Tensor.get s ~n:1 ~h:0 ~w:0 ~c:0)

let test_argmax_channels () =
  let t =
    Tensor.of_array (Shape.make ~n:2 ~h:1 ~w:1 ~c:3)
      [| 0.1; 0.7; 0.2; 0.9; 0.05; 0.05 |]
  in
  Alcotest.(check (array int)) "argmax" [| 1; 0 |] (Layers.argmax_channels t)

let test_shortcut_pad () =
  let t =
    Tensor.of_array (Shape.make ~n:1 ~h:4 ~w:4 ~c:1)
      (Array.init 16 float_of_int)
  in
  let out = Layers.shortcut_pad ~stride:2 ~out_c:3 t in
  let s = Tensor.shape out in
  check_int "h halved" 2 Shape.(s.h);
  check_int "channels padded" 3 Shape.(s.c);
  check_float "subsampled (0,0)" 0. (Tensor.get out ~n:0 ~h:0 ~w:0 ~c:0);
  check_float "subsampled (1,1)" 10. (Tensor.get out ~n:0 ~h:1 ~w:1 ~c:0);
  check_float "padding zero" 0. (Tensor.get out ~n:0 ~h:1 ~w:1 ~c:2)

(* --- graph builder --- *)

let test_builder_validations () =
  let b = Graph.builder () in
  let i = Graph.add b ~name:"input" Graph.Input [] in
  Alcotest.check_raises "unknown input"
    (Nn_error.Error
       (Nn_error.Unknown_input { op = "Relu"; node = "r"; input = 5 }))
    (fun () -> ignore (Graph.add b ~name:"r" Graph.Relu [ 5 ]));
  Alcotest.check_raises "arity"
    (Nn_error.Error
       (Nn_error.Arity_mismatch
          { op = "Add"; node = "a"; expected = 2; got = 1 }))
    (fun () -> ignore (Graph.add b ~name:"a" Graph.Add [ i ]))

let test_graph_inspection () =
  let g = single_conv_graph () in
  check_int "3 nodes" 3 (Graph.size g);
  check_int "one conv layer" 1 (List.length (Graph.conv_layers g));
  check_bool "find_by_name" true
    (Option.is_some (Graph.find_by_name g "conv1"));
  let input = Shape.make ~n:2 ~h:8 ~w:8 ~c:3 in
  (* 8*8 positions x 3*3*3 taps x 4 filters x 2 images *)
  check_int "macs" (2 * 8 * 8 * 27 * 4) (Graph.total_macs g ~input)

let test_infer_shapes () =
  let g = single_conv_graph () in
  let input = Shape.make ~n:1 ~h:8 ~w:8 ~c:3 in
  let shapes = Graph.infer_shapes g ~input in
  List.iter
    (fun (id, shape) ->
      match (Graph.node g id).Graph.op with
      | Graph.Conv2d _ ->
        (match shape with
        | Some s ->
          check_bool "conv output shape" true
            (Shape.equal s (Shape.make ~n:1 ~h:8 ~w:8 ~c:4))
        | None -> Alcotest.fail "conv must be tensor-valued")
      | _ -> ())
    shapes

(* --- transform (Fig. 1) --- *)

let test_transform_structure () =
  let g = single_conv_graph () in
  let approx = Transform.approximate ~config:(exact_config ()) g in
  (* +4 nodes: min, max, filter_min, filter_max. *)
  check_int "node count" (Graph.size g + 4) (Graph.size approx);
  let conv =
    match Graph.find_by_name approx "conv1" with
    | Some n -> n
    | None -> Alcotest.fail "conv1 survives rename"
  in
  (match conv.Graph.op with
  | Graph.Ax_conv2d _ -> ()
  | _ -> Alcotest.fail "conv1 became AxConv2D");
  check_int "AxConv2D has 5 inputs" 5 (List.length conv.Graph.inputs);
  (* The min/max nodes read the same data node AxConv2D reads. *)
  let data = List.nth conv.Graph.inputs 0 in
  let mn = Graph.node approx (List.nth conv.Graph.inputs 1) in
  let mx = Graph.node approx (List.nth conv.Graph.inputs 2) in
  check_bool "min node reads data" true (mn.Graph.inputs = [ data ]);
  check_bool "max node reads data" true (mx.Graph.inputs = [ data ]);
  check_bool "min op" true (mn.Graph.op = Graph.Min_reduce);
  check_bool "max op" true (mx.Graph.op = Graph.Max_reduce);
  (* Filter range folded to constants. *)
  (match (Graph.node approx (List.nth conv.Graph.inputs 3)).Graph.op with
  | Graph.Const_scalar _ -> ()
  | _ -> Alcotest.fail "filter_min is a constant")

let test_transform_preserves_semantics_with_exact_lut () =
  let g = single_conv_graph () in
  let approx = Transform.approximate ~config:(exact_config ()) g in
  let input = Tensor.create (Shape.make ~n:2 ~h:8 ~w:8 ~c:3) in
  Tensor.fill_uniform ~lo:(-1.) ~hi:1. (Rng.create 5) input;
  let want = Exec.run g ~input in
  let got = Exec.run approx ~input in
  (* Exact LUT: only quantization noise remains. *)
  check_bool
    (Printf.sprintf "outputs close (%g)" (Tensor.max_abs_diff want got))
    true
    (Tensor.max_abs_diff want got < 0.2)

let test_transform_select_subset () =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let f1 = random_filter ~seed:1 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let f2 = random_filter ~seed:2 ~kh:3 ~kw:3 ~in_c:4 ~out_c:4 in
  let c1 =
    Graph.add b ~name:"conv1"
      (Graph.Conv2d { filter = f1; bias = None; spec = Conv_spec.default })
      [ input ]
  in
  let c2 =
    Graph.add b ~name:"conv2"
      (Graph.Conv2d { filter = f2; bias = None; spec = Conv_spec.default })
      [ c1 ]
  in
  let g = Graph.finalize b ~output:c2 in
  let approx =
    Transform.approximate
      ~select:(fun n -> n.Graph.name = "conv2")
      ~config:(exact_config ()) g
  in
  (match (Option.get (Graph.find_by_name approx "conv1")).Graph.op with
  | Graph.Conv2d _ -> ()
  | _ -> Alcotest.fail "conv1 untouched");
  match (Option.get (Graph.find_by_name approx "conv2")).Graph.op with
  | Graph.Ax_conv2d _ -> ()
  | _ -> Alcotest.fail "conv2 transformed"

let test_per_layer_transform () =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let f1 = random_filter ~seed:1 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let c1 =
    Graph.add b ~name:"conv1"
      (Graph.Conv2d { filter = f1; bias = None; spec = Conv_spec.default })
      [ input ]
  in
  let g = Graph.finalize b ~output:c1 in
  let approx = Transform.per_layer ~configs:[ ("conv1", exact_config ()) ] g in
  (match (Option.get (Graph.find_by_name approx "conv1")).Graph.op with
  | Graph.Ax_conv2d _ -> ()
  | _ -> Alcotest.fail "conv1 transformed");
  Alcotest.check_raises "unknown layer"
    (Nn_error.Error
       (Nn_error.No_such_layer
          { context = "Transform.per_layer"; name = "nope" }))
    (fun () ->
      ignore (Transform.per_layer ~configs:[ ("nope", exact_config ()) ] g))

(* --- executor --- *)

let test_exec_residual_graph () =
  (* input -> conv -> relu -> add(input-shortcut) — checks two-input ops. *)
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let filter = random_filter ~seed:3 ~kh:3 ~kw:3 ~in_c:2 ~out_c:2 in
  let conv =
    Graph.add b ~name:"conv"
      (Graph.Conv2d { filter; bias = None; spec = Conv_spec.default })
      [ input ]
  in
  let relu = Graph.add b ~name:"relu" Graph.Relu [ conv ] in
  let add = Graph.add b ~name:"add" Graph.Add [ relu; input ] in
  let g = Graph.finalize b ~output:add in
  let x = Tensor.create (Shape.make ~n:1 ~h:5 ~w:5 ~c:2) in
  Tensor.fill_uniform (Rng.create 6) x;
  let out = Exec.run g ~input:x in
  let conv_out = Conv_float.gemm ~input:x ~filter ~spec:Conv_spec.default () in
  let want = Tensor.add (Layers.relu conv_out) x in
  check_bool "residual exec" true (Tensor.approx_equal want out)

let test_exec_strategies_agree_on_graph () =
  let g = single_conv_graph () in
  let approx = Transform.approximate ~config:(exact_config ()) g in
  let input = Tensor.create (Shape.make ~n:2 ~h:8 ~w:8 ~c:3) in
  Tensor.fill_uniform ~lo:(-1.) ~hi:1. (Rng.create 8) input;
  let a = Exec.run ~strategy:Exec.Cpu_gemm approx ~input in
  let b = Exec.run ~strategy:Exec.Cpu_direct approx ~input in
  check_bool "strategies agree through the graph" true
    (Tensor.max_abs_diff a b = 0.)

let test_exec_scalar_output_rejected () =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let mn = Graph.add b ~name:"min" Graph.Min_reduce [ input ] in
  let g = Graph.finalize b ~output:mn in
  let x = Tensor.create (Shape.make ~n:1 ~h:2 ~w:2 ~c:1) in
  Alcotest.check_raises "scalar output"
    (Invalid_argument "Exec: expected a tensor value") (fun () ->
      ignore (Exec.run g ~input:x));
  match Exec.run_value g ~input:x with
  | Exec.Scalar _ -> ()
  | Exec.Tensor _ -> Alcotest.fail "min is scalar-valued"

(* --- dot export --- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_to_dot () =
  let g = single_conv_graph () in
  let approx = Transform.approximate ~config:(exact_config ()) g in
  let dot = Graph.to_dot approx in
  check_bool "digraph" true (contains dot "digraph model");
  check_bool "AxConv2D node" true (contains dot "AxConv2D");
  check_bool "Min node" true (contains dot "Min");
  check_bool "edges" true (contains dot "->");
  check_bool "highlight colour" true (contains dot "#f4cccc");
  (* one edge per input over all nodes *)
  let edges = ref 0 in
  String.iteri
    (fun i ch ->
      if ch = '-' && i + 1 < String.length dot && dot.[i + 1] = '>' then
        incr edges)
    dot;
  let expected =
    Array.fold_left
      (fun acc n -> acc + List.length n.Graph.inputs)
      0 (Graph.nodes approx)
  in
  check_int "edge count" expected !edges

(* --- profile --- *)

let test_profile_phases_partition_time () =
  let p = Profile.create () in
  let g = single_conv_graph () in
  let approx = Transform.approximate ~config:(exact_config ()) g in
  let input = Tensor.create (Shape.make ~n:2 ~h:8 ~w:8 ~c:3) in
  Tensor.fill_uniform (Rng.create 4) input;
  ignore (Exec.run ~profile:p approx ~input);
  check_bool "lut lookups counted" true (Profile.lut_lookups p > 0);
  check_bool "macs counted" true (Profile.macs p > 0);
  check_int "lookups = macs here" (Profile.macs p) (Profile.lut_lookups p);
  let b = Profile.breakdown p in
  let sum =
    b.Profile.init_pct +. b.Profile.quantization_pct +. b.Profile.lut_pct
    +. b.Profile.other_pct
  in
  check_bool "percentages sum to 100" true (abs_float (sum -. 100.) < 1e-6)

let test_profile_nested_no_double_count () =
  let p = Profile.create () in
  Profile.time p Profile.Other (fun () ->
      Profile.time p Profile.Lut (fun () ->
          (* busy-wait a little so the inner phase records time *)
          let deadline = Unix.gettimeofday () +. 0.01 in
          while Unix.gettimeofday () < deadline do () done));
  check_bool "inner charged" true (Profile.seconds p Profile.Lut >= 0.009);
  (* outer must not also contain the inner time *)
  check_bool "outer refunded" true (Profile.seconds p Profile.Other < 0.005);
  check_bool "total sane" true (Profile.total_seconds p < 0.02)

let test_profile_reset () =
  let p = Profile.create () in
  Profile.add_seconds p Profile.Init 1.;
  Profile.count_lut_lookups p 5;
  Profile.reset p;
  check_float "cleared" 0. (Profile.total_seconds p);
  check_int "lookups cleared" 0 (Profile.lut_lookups p)

let () =
  Alcotest.run "ax_nn_graph"
    [
      ( "layers",
        [
          Alcotest.test_case "relu" `Quick test_relu;
          Alcotest.test_case "max pool" `Quick test_max_pool;
          Alcotest.test_case "global avg pool" `Quick test_global_avg_pool;
          Alcotest.test_case "batch norm + fold" `Quick
            test_batch_norm_and_fold;
          Alcotest.test_case "dense" `Quick test_dense;
          Alcotest.test_case "softmax" `Quick test_softmax_properties;
          Alcotest.test_case "argmax" `Quick test_argmax_channels;
          Alcotest.test_case "shortcut pad" `Quick test_shortcut_pad;
        ] );
      ( "graph",
        [
          Alcotest.test_case "builder validations" `Quick
            test_builder_validations;
          Alcotest.test_case "inspection" `Quick test_graph_inspection;
          Alcotest.test_case "infer shapes" `Quick test_infer_shapes;
        ] );
      ( "transform",
        [
          Alcotest.test_case "Fig.1 structure" `Quick test_transform_structure;
          Alcotest.test_case "semantics with exact LUT" `Quick
            test_transform_preserves_semantics_with_exact_lut;
          Alcotest.test_case "select subset" `Quick test_transform_select_subset;
          Alcotest.test_case "per-layer configs" `Quick
            test_per_layer_transform;
        ] );
      ( "exec",
        [
          Alcotest.test_case "residual graph" `Quick test_exec_residual_graph;
          Alcotest.test_case "strategies agree" `Quick
            test_exec_strategies_agree_on_graph;
          Alcotest.test_case "scalar output rejected" `Quick
            test_exec_scalar_output_rejected;
        ] );
      ( "dot",
        [ Alcotest.test_case "fig.1-style export" `Quick test_to_dot ] );
      ( "profile",
        [
          Alcotest.test_case "phases partition time" `Quick
            test_profile_phases_partition_time;
          Alcotest.test_case "nested no double count" `Quick
            test_profile_nested_no_double_count;
          Alcotest.test_case "reset" `Quick test_profile_reset;
        ] );
    ]
