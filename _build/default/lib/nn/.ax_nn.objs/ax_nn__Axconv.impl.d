lib/nn/axconv.ml: Accumulator Array Ax_arith Ax_quant Ax_tensor Bigarray Bytes Char Conv_spec Domain Filter Im2col List Profile
