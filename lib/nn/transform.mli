(** The Fig. 1 graph rewrite: replace every [Conv2D] by [AxConv2D] and
    wire the quantization-range inputs.

    For each transformed convolution the input tensor is tapped by new
    [Min] and [Max] reduction nodes (evaluated once per batch, so the
    transformed graph remains usable for training-style pipelines where
    ranges follow the data), while the filter range — the weights being
    graph constants — is folded into two [Const] scalar nodes. *)

val approximate :
  ?select:(Graph.node -> bool) ->
  config:Axconv.config ->
  Graph.t ->
  Graph.t
(** [approximate ~config g] rewrites every [Conv2d] node accepted by
    [select] (default: all).  Node ids change; names are preserved, with
    the inserted range nodes named ["<conv>/min"], ["<conv>/max"],
    ["<conv>/filter_min"], ["<conv>/filter_max"]. *)

val per_layer :
  configs:(string * Axconv.config) list ->
  Graph.t ->
  Graph.t
(** ALWANN-style layer-wise assignment: each named convolution gets its
    own multiplier configuration; convolutions absent from the list stay
    accurate.  Raises {!Nn_error.Error} ([No_such_layer] /
    [Not_a_conv]) if a name matches no [Conv2d] node. *)
