(* ResNet builders and the synthetic dataset. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Layers = Ax_nn.Layers
module Resnet = Ax_models.Resnet
module Weights = Ax_models.Weights
module Cifar = Ax_data.Cifar

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- resnet structure --- *)

let test_depths_are_table1 () =
  Alcotest.(check (list int)) "ten depths"
    [ 8; 14; 20; 26; 32; 38; 44; 50; 56; 62 ]
    Resnet.table1_depths

let test_conv_layer_counts_match_table1 () =
  (* Table I: L = depth - 1 for every row. *)
  List.iter
    (fun depth ->
      let g = Resnet.build ~depth () in
      check_int
        (Printf.sprintf "ResNet-%d conv count" depth)
        (depth - 1)
        (List.length (Graph.conv_layers g));
      check_int "helper agrees" (depth - 1) (Resnet.conv_layer_count depth))
    Resnet.table1_depths

let test_macs_grow_linearly () =
  (* Table I: t_comp and MACs grow linearly with depth; the per-6-layer
     increment must be constant. *)
  let macs =
    List.map (fun depth -> Resnet.macs_per_image ~depth) Resnet.table1_depths
  in
  let rec increments = function
    | a :: (b :: _ as rest) -> (b - a) :: increments rest
    | [ _ ] | [] -> []
  in
  match increments macs with
  | first :: rest ->
    List.iter (fun d -> check_int "constant MAC increment" first d) rest
  | [] -> Alcotest.fail "no increments"

let test_invalid_depth_rejected () =
  Alcotest.check_raises "depth 9"
    (Invalid_argument "Resnet: depth 9 invalid ((d-2) mod 6 <> 0)") (fun () ->
      ignore (Resnet.build ~depth:9 ()))

let test_resnet8_runs_and_is_probabilistic () =
  let g = Resnet.build ~depth:8 () in
  let data = Cifar.generate ~n:4 () in
  let out = Exec.run g ~input:data.Cifar.images in
  let s = Tensor.shape out in
  check_bool "output shape" true
    (Shape.equal s (Shape.make ~n:4 ~h:1 ~w:1 ~c:10));
  (* softmax rows sum to 1 *)
  for n = 0 to 3 do
    let sum = ref 0. in
    for c = 0 to 9 do
      sum := !sum +. Tensor.get out ~n ~h:0 ~w:0 ~c
    done;
    check_bool "row sums to 1" true (abs_float (!sum -. 1.) < 1e-4)
  done

let test_resnet_deterministic_weights () =
  let g1 = Resnet.build ~depth:8 ~seed:3 () in
  let g2 = Resnet.build ~depth:8 ~seed:3 () in
  let data = Cifar.generate ~n:2 () in
  let a = Exec.run g1 ~input:data.Cifar.images in
  let b = Exec.run g2 ~input:data.Cifar.images in
  check_bool "same seed, same network" true (Tensor.max_abs_diff a b = 0.);
  let g3 = Resnet.build ~depth:8 ~seed:4 () in
  let c = Exec.run g3 ~input:data.Cifar.images in
  check_bool "different seed differs" true (Tensor.max_abs_diff a c > 0.)

let test_shortcut_blocks_present () =
  (* Depth 14+ has stage transitions, so ShortcutPad nodes must exist. *)
  let g = Resnet.build ~depth:14 () in
  let pads =
    Array.to_list (Graph.nodes g)
    |> List.filter (fun n ->
           match n.Graph.op with Graph.Shortcut_pad _ -> true | _ -> false)
  in
  check_int "two stage transitions" 2 (List.length pads)

(* --- weights --- *)

let test_weights_deterministic_per_name () =
  let f1 = Weights.conv_filter ~seed:1 ~name:"a" ~kh:3 ~kw:3 ~in_c:2 ~out_c:2 in
  let f2 = Weights.conv_filter ~seed:1 ~name:"a" ~kh:3 ~kw:3 ~in_c:2 ~out_c:2 in
  let f3 = Weights.conv_filter ~seed:1 ~name:"b" ~kh:3 ~kw:3 ~in_c:2 ~out_c:2 in
  check_bool "same name same weights" true
    (Ax_nn.Filter.to_array f1 = Ax_nn.Filter.to_array f2);
  check_bool "different name differs" true
    (Ax_nn.Filter.to_array f1 <> Ax_nn.Filter.to_array f3)

let test_batch_norm_params_near_identity () =
  let scale, shift = Weights.batch_norm ~seed:1 ~name:"bn" ~channels:64 in
  Array.iter
    (fun s -> check_bool "scale near 1" true (abs_float (s -. 1.) < 1.))
    scale;
  Array.iter
    (fun s -> check_bool "shift near 0" true (abs_float s < 0.5))
    shift

(* --- cifar --- *)

let test_cifar_geometry () =
  let d = Cifar.generate ~n:12 () in
  let s = Tensor.shape d.Cifar.images in
  check_bool "12x32x32x3" true
    (Shape.equal s (Shape.make ~n:12 ~h:32 ~w:32 ~c:3));
  check_int "labels" 12 (Array.length d.Cifar.labels);
  check_int "image bytes" (32 * 32 * 3 * 4) Cifar.image_bytes

let test_cifar_values_in_range () =
  let d = Cifar.generate ~n:5 () in
  Tensor.iteri_flat
    (fun _ v ->
      if v < 0. || v > 1. then Alcotest.failf "pixel %g out of [0,1]" v)
    d.Cifar.images

let test_cifar_labels_cycle () =
  let d = Cifar.generate ~n:25 () in
  check_int "label 0" 0 d.Cifar.labels.(0);
  check_int "label 9" 9 d.Cifar.labels.(9);
  check_int "label 10 wraps" 0 d.Cifar.labels.(10);
  check_int "label 24" 4 d.Cifar.labels.(24)

let test_cifar_deterministic () =
  let a = Cifar.generate ~seed:3 ~n:3 () in
  let b = Cifar.generate ~seed:3 ~n:3 () in
  check_bool "same seed" true
    (Tensor.max_abs_diff a.Cifar.images b.Cifar.images = 0.);
  let c = Cifar.generate ~seed:4 ~n:3 () in
  check_bool "different seed" true
    (Tensor.max_abs_diff a.Cifar.images c.Cifar.images > 0.)

let test_cifar_batches_layout () =
  let bs = Cifar.batches ~total:25 ~batch_size:10 () in
  check_int "three batches" 3 (List.length bs);
  Alcotest.(check (list int)) "sizes"
    [ 10; 10; 5 ]
    (List.map (fun b -> Array.length b.Cifar.labels) bs);
  (* Batches are slices of one generation: labels keep cycling. *)
  let second = List.nth bs 1 in
  check_int "batch 2 first label" 0 second.Cifar.labels.(0)

let test_cifar_classes_distinguishable () =
  (* Mean image of class 0 and class 1 must differ clearly: the classes
     encode different spatial patterns, not just noise. *)
  let d = Cifar.generate ~n:100 () in
  let mean_of label =
    let acc = Array.make (32 * 32 * 3) 0. and count = ref 0 in
    Array.iteri
      (fun i l ->
        if l = label then begin
          incr count;
          for px = 0 to (32 * 32 * 3) - 1 do
            acc.(px) <-
              acc.(px) +. Tensor.get_flat d.Cifar.images ((i * 32 * 32 * 3) + px)
          done
        end)
      d.Cifar.labels;
    Array.map (fun v -> v /. float_of_int !count) acc
  in
  let m0 = mean_of 0 and m1 = mean_of 1 in
  let dist = ref 0. in
  Array.iteri (fun i v -> dist := !dist +. abs_float (v -. m1.(i))) m0;
  check_bool "class means differ" true (!dist /. 3072. > 0.05)

let () =
  Alcotest.run "ax_models_data"
    [
      ( "resnet",
        [
          Alcotest.test_case "Table I depths" `Quick test_depths_are_table1;
          Alcotest.test_case "conv layer counts (L column)" `Quick
            test_conv_layer_counts_match_table1;
          Alcotest.test_case "MACs grow linearly" `Quick
            test_macs_grow_linearly;
          Alcotest.test_case "invalid depth rejected" `Quick
            test_invalid_depth_rejected;
          Alcotest.test_case "ResNet-8 runs" `Quick
            test_resnet8_runs_and_is_probabilistic;
          Alcotest.test_case "deterministic weights" `Quick
            test_resnet_deterministic_weights;
          Alcotest.test_case "shortcut blocks" `Quick
            test_shortcut_blocks_present;
        ] );
      ( "weights",
        [
          Alcotest.test_case "deterministic per name" `Quick
            test_weights_deterministic_per_name;
          Alcotest.test_case "bn near identity" `Quick
            test_batch_norm_params_near_identity;
        ] );
      ( "cifar",
        [
          Alcotest.test_case "geometry" `Quick test_cifar_geometry;
          Alcotest.test_case "values in [0,1]" `Quick
            test_cifar_values_in_range;
          Alcotest.test_case "labels cycle" `Quick test_cifar_labels_cycle;
          Alcotest.test_case "deterministic" `Quick test_cifar_deterministic;
          Alcotest.test_case "batch layout" `Quick test_cifar_batches_layout;
          Alcotest.test_case "classes distinguishable" `Quick
            test_cifar_classes_distinguishable;
        ] );
    ]
