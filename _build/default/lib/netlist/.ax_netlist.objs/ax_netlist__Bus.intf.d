lib/netlist/bus.mli: Circuit
