lib/arith/error_metrics.ml: Format Lut Signedness
