lib/tensor/matrix.mli:
