module Load_error = Ax_arith.Load_error

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ?timeout address =
  let fd =
    match (address : Server.address) with
    | Server.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with _ -> ()); raise e);
      fd
    | Server.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e -> (try Unix.close fd with _ -> ()); raise e);
      fd
  in
  (match timeout with
  | Some s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
  | None -> ());
  { fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

type error =
  | Refused of {
      code : Protocol.error_code;
      retry_after_ms : int;
      message : string;
    }
  | Protocol_error of Load_error.t
  | Unexpected of Protocol.response
  | Disconnected
  | Timed_out

let error_to_string = function
  | Refused { code; retry_after_ms; message } ->
    Printf.sprintf "refused (%s%s): %s"
      (Protocol.error_code_name code)
      (if retry_after_ms > 0 then Printf.sprintf ", retry after %d ms" retry_after_ms
       else "")
      message
  | Protocol_error e -> "protocol error: " ^ Load_error.to_string e
  | Unexpected _ -> "unexpected response kind"
  | Disconnected -> "connection closed by daemon"
  | Timed_out -> "timed out waiting for the daemon's response"

let read_response t =
  match Protocol.read_frame t.fd with
  | `Eof -> Error Disconnected
  | `Timeout -> Error Timed_out
  | `Err e -> Error (Protocol_error e)
  | `Payload payload -> (
    match Protocol.decode_response payload with
    | Error e -> Error (Protocol_error e)
    | Ok r -> Ok r)

let roundtrip t request =
  Protocol.write_frame t.fd (Protocol.encode_request request);
  read_response t

let refused (e : Protocol.response) =
  match e with
  | Protocol.Error { code; retry_after_ms; message; _ } ->
    Error (Refused { code; retry_after_ms; message })
  | other -> Error (Unexpected other)

let ping t =
  match roundtrip t Protocol.Ping with
  | Ok Protocol.Pong -> Ok ()
  | Ok other -> refused other
  | Error _ as e -> e

let list_models t =
  match roundtrip t Protocol.List_models with
  | Ok (Protocol.Models models) -> Ok models
  | Ok other -> refused other
  | Error _ as e -> e

let infer t ?(id = 0) ?deadline_ms ~model input =
  match
    roundtrip t (Protocol.Infer { id; model; deadline_ms = deadline_ms; input })
  with
  (* a stale or stray frame (a previous exchange's late reply) must not
     be accepted as this request's answer: the echoed id has to match *)
  | Ok (Protocol.Predictions { id = echoed; classes }) when echoed = id ->
    Ok classes
  (* a request-bound error for some *other* id is equally stale *)
  | Ok (Protocol.Error { id = Some echoed; _ } as r) when echoed <> id ->
    Error (Unexpected r)
  | Ok other -> refused other
  | Error _ as e -> e

let metrics t =
  match roundtrip t Protocol.Metrics with
  | Ok (Protocol.Metrics_dump text) -> Ok text
  | Ok other -> refused other
  | Error _ as e -> e

let shutdown t =
  match roundtrip t Protocol.Shutdown with
  | Ok Protocol.Shutdown_ack -> Ok ()
  | Ok other -> refused other
  | Error _ as e -> e

let send_raw t bytes =
  let len = Bytes.length bytes in
  let rec go sent =
    if sent < len then
      match Unix.single_write t.fd bytes sent (len - sent) with
      | n -> go (sent + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go sent
  in
  go 0
