(* Deterministic cooperative scheduler for small multi-thread
   scenarios.  Scenario "threads" are plain thunks run as effect-based
   coroutines on the calling thread: every operation on an Ax_conc
   shim (and on {!var} cells) performs a [Sched] effect, handing
   control to the scheduler, which enumerates interleavings by
   depth-first search over the choice points.

   Continuations are one-shot, so the search is stateless: each
   schedule re-runs the scenario from scratch with a forced choice
   prefix, which also gives seeded replay for free (a schedule is just
   the list of chosen thread indices).  Preemption bounding follows
   the usual definition — switching away from a thread that is still
   runnable costs one preemption; switching off a blocked or finished
   thread is free.

   The per-run model covers mutexes (a pending lock on a busy mutex is
   simply not enabled, so no equivalent schedules are wasted on
   spinning), condition variables (FIFO waiters; a signal converts the
   waiter into a pending reacquire), synchronizing atomics, and
   FastTrack race detection over the same {!Vclock} algebra the
   record-mode detector uses.  Violations: a failed {!check}, a data
   race on a tracked cell, a deadlock (unfinished threads, none
   enabled), a lock still held at scenario end, an uncaught exception
   in a body, or an invalid replay schedule. *)

type req =
  | R_lock of int * string
  | R_unlock of int * string
  | R_wait of { cond : int; cname : string; m : int; mname : string }
  | R_signal of int
  | R_broadcast of int
  | R_cell of { id : int; cname : string; write : bool; track : bool }
  | R_sync of int
  | R_yield

type _ Effect.t += Sched : req -> unit Effect.t

exception Violation_exn of string
exception Killed

type k = (unit, unit) Effect.Deep.continuation

type status =
  | Not_started of (unit -> unit)
  | Paused of k * req
  | Wait_blocked of k * int * string  (* continuation, mutex id, mutex name *)
  | Finished

type thr = {
  idx : int;
  mutable status : status;
  mutable clock : Vclock.t;
}

type lrec = {
  l_name : string;
  mutable owner : int option;  (* thread idx; -1 = the direct section *)
  mutable lclock : Vclock.t;
}

type point = {
  p_enabled : int list;  (* sorted *)
  p_prev : int option;
  p_preempt_before : int;
  p_chosen : int;
}

type run_state = {
  locks : (int, lrec) Hashtbl.t;
  conds : (int, int Queue.t) Hashtbl.t;
  r_cells : (int, Vclock.cell) Hashtbl.t;
  syncs : (int, Vclock.t) Hashtbl.t;
  mutable thrs : thr array;
  mutable viol : string option;
  mutable preempts : int;
  mutable prev : int option;
  mutable trail : point list;  (* reversed *)
}

(* All coroutines run on the one real thread driving [explore], so
   plain refs are enough for the dispatch plumbing. *)
let current_run : run_state option ref = ref None
let in_coop = ref false

let set_viol rs msg = if rs.viol = None then rs.viol <- Some msg

let get_lock rs id name =
  match Hashtbl.find_opt rs.locks id with
  | Some l -> l
  | None ->
    let l = { l_name = name; owner = None; lclock = Vclock.empty } in
    Hashtbl.replace rs.locks id l;
    l

let get_cond rs id =
  match Hashtbl.find_opt rs.conds id with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace rs.conds id q;
    q

let get_cell rs id =
  match Hashtbl.find_opt rs.r_cells id with
  | Some c -> c
  | None ->
    let c = Vclock.cell () in
    Hashtbl.replace rs.r_cells id c;
    c

let wake_one rs cond =
  let q = get_cond rs cond in
  if not (Queue.is_empty q) then begin
    let j = Queue.pop q in
    match rs.thrs.(j).status with
    | Wait_blocked (k, m, mname) ->
      rs.thrs.(j).status <- Paused (k, R_lock (m, mname))
    | _ -> ()
  end

let wake_all rs cond =
  let q = get_cond rs cond in
  while not (Queue.is_empty q) do
    let j = Queue.pop q in
    match rs.thrs.(j).status with
    | Wait_blocked (k, m, mname) ->
      rs.thrs.(j).status <- Paused (k, R_lock (m, mname))
    | _ -> ()
  done

(* Operations performed outside any coroutine — the scenario setup
   thunk and the [after] checks — apply immediately: they run alone,
   before the threads start / after they all finish, so they are
   happens-before-ordered against everything and need no race
   modelling. *)
let direct_apply rs = function
  | R_lock (id, name) ->
    let l = get_lock rs id name in
    if l.owner <> None then
      raise
        (Violation_exn
           (Printf.sprintf
              "direct (setup/after) section would deadlock on '%s'" name));
    l.owner <- Some (-1)
  | R_unlock (id, name) -> (get_lock rs id name).owner <- None
  | R_wait { cname; _ } ->
    raise
      (Violation_exn
         (Printf.sprintf
            "Condition.wait on '%s' in a direct (setup/after) section" cname))
  | R_signal cond -> wake_one rs cond
  | R_broadcast cond -> wake_all rs cond
  | R_cell _ | R_sync _ | R_yield -> ()

let dispatch req =
  if !in_coop then Effect.perform (Sched req)
  else
    match !current_run with Some rs -> direct_apply rs req | None -> ()

(* ------------------------------------------------------------------ *)
(* Coroutine driving                                                   *)
(* ------------------------------------------------------------------ *)

let handler_of rs thr =
  {
    Effect.Deep.retc =
      (fun () ->
        in_coop := false;
        thr.status <- Finished);
    exnc =
      (fun e ->
        in_coop := false;
        thr.status <- Finished;
        match e with
        | Killed -> ()
        | Violation_exn msg -> set_viol rs msg
        | e ->
          set_viol rs
            (Printf.sprintf "thread %d raised: %s" thr.idx
               (Printexc.to_string e)));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Sched req ->
          Some
            (fun (cont : (a, _) Effect.Deep.continuation) ->
              in_coop := false;
              thr.status <- Paused (cont, req))
        | _ -> None);
  }

let start_thread rs thr body =
  in_coop := true;
  Effect.Deep.match_with body () (handler_of rs thr)

let resume cont =
  in_coop := true;
  Effect.Deep.continue cont ()

(* Tear down any coroutine still holding a continuation.  Finalizers
   ([Fun.protect] in with_lock bodies) may perform further effects on
   the way out; the handler re-parks them, so keep killing until the
   thread is really finished. *)
let rec kill thr =
  match thr.status with
  | Paused (cont, _) | Wait_blocked (cont, _, _) ->
    thr.status <- Finished;
    in_coop := true;
    (try Effect.Deep.discontinue cont Killed with _ -> ());
    in_coop := false;
    kill thr
  | Not_started _ -> thr.status <- Finished
  | Finished -> ()

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let lock_free rs id name = (get_lock rs id name).owner = None

let thread_enabled rs thr =
  match thr.status with
  | Not_started _ -> true
  | Paused (_, R_lock (m, mname)) -> lock_free rs m mname
  | Paused _ -> true
  | Wait_blocked _ | Finished -> false

let enabled_list rs =
  Array.to_list rs.thrs
  |> List.filter (thread_enabled rs)
  |> List.map (fun t -> t.idx)
  |> List.sort compare

(* Candidate order at a choice point: the previously-running thread
   first if still runnable (the free, non-preemptive continuation),
   then the rest in index order. *)
let candidates ~enabled ~prev =
  match prev with
  | Some q when List.mem q enabled -> q :: List.filter (fun i -> i <> q) enabled
  | _ -> enabled

let switch_cost ~prev ~enabled c =
  match prev with
  | Some q when List.mem q enabled && c <> q -> 1
  | _ -> 0

let budget_ok ~max_preemptions ~prev ~enabled ~before c =
  match max_preemptions with
  | None -> true
  | Some mp -> before + switch_cost ~prev ~enabled c <= mp

let apply_simple rs thr req =
  let i = thr.idx in
  match req with
  | R_lock (m, mname) ->
    let l = get_lock rs m mname in
    l.owner <- Some i;
    thr.clock <- Vclock.join thr.clock l.lclock
  | R_unlock (m, mname) ->
    let l = get_lock rs m mname in
    if l.owner <> Some i then
      set_viol rs
        (Printf.sprintf "thread %d released '%s' without holding it" i mname)
    else begin
      l.owner <- None;
      l.lclock <- thr.clock;
      thr.clock <- Vclock.tick thr.clock i
    end
  | R_signal cond -> wake_one rs cond
  | R_broadcast cond -> wake_all rs cond
  | R_cell { id; cname; write; track } ->
    if track then begin
      let cell = get_cell rs id in
      match
        Vclock.access cell ~tid:i ~clock:thr.clock
          (if write then Vclock.Write else Vclock.Read)
      with
      | Some r ->
        set_viol rs
          (Printf.sprintf "data race on '%s': %s" cname
             (Vclock.race_to_string r))
      | None -> ()
    end
  | R_sync id ->
    (match Hashtbl.find_opt rs.syncs id with
    | Some sc -> thr.clock <- Vclock.join thr.clock sc
    | None -> ());
    Hashtbl.replace rs.syncs id thr.clock;
    thr.clock <- Vclock.tick thr.clock i
  | R_yield | R_wait _ -> ()

let step rs i =
  let thr = rs.thrs.(i) in
  match thr.status with
  | Not_started body -> start_thread rs thr body
  | Paused (cont, R_wait { cond; cname; m; mname }) ->
    let l = get_lock rs m mname in
    if l.owner <> Some i then
      set_viol rs
        (Printf.sprintf "thread %d waits on '%s' without holding '%s'" i cname
           mname)
    else begin
      l.owner <- None;
      l.lclock <- thr.clock;
      thr.clock <- Vclock.tick thr.clock i;
      Queue.push i (get_cond rs cond);
      thr.status <- Wait_blocked (cont, m, mname)
    end
  | Paused (cont, req) ->
    apply_simple rs thr req;
    if rs.viol = None then resume cont
  | Wait_blocked _ | Finished -> assert false

(* One complete run under a forced choice prefix; policy choices take
   over once the prefix is exhausted.  Returns the trail (in order)
   and the violation, if any. *)
let run_one ~max_preemptions ~forced ~after scenario =
  let rs =
    {
      locks = Hashtbl.create 8;
      conds = Hashtbl.create 8;
      r_cells = Hashtbl.create 8;
      syncs = Hashtbl.create 8;
      thrs = [||];
      viol = None;
      preempts = 0;
      prev = None;
      trail = [];
    }
  in
  current_run := Some rs;
  let hooks =
    {
      Conc.owner = Conc.thread_key ();
      x_lock = (fun ~id ~name -> dispatch (R_lock (id, name)));
      x_unlock = (fun ~id ~name -> dispatch (R_unlock (id, name)));
      x_wait =
        (fun ~cond ~cname ~m ~mname -> dispatch (R_wait { cond; cname; m; mname }));
      x_signal = (fun ~cond -> dispatch (R_signal cond));
      x_broadcast = (fun ~cond -> dispatch (R_broadcast cond));
      x_cell =
        (fun ~id ~name ~write ->
          dispatch (R_cell { id; cname = name; write; track = true }));
      x_sync = (fun ~id -> dispatch (R_sync id));
    }
  in
  Conc.set_explore (Some hooks);
  Fun.protect
    ~finally:(fun () ->
      Array.iter kill rs.thrs;
      Conc.set_explore None;
      current_run := None;
      in_coop := false)
    (fun () ->
      (try
         let bodies = scenario () in
         rs.thrs <-
           Array.of_list
             (List.mapi
                (fun i b ->
                  { idx = i; status = Not_started b; clock = Vclock.tick Vclock.empty i })
                bodies);
         let forced = ref forced in
         let step_no = ref 0 in
         let running = ref true in
         while !running && rs.viol = None do
           let enabled = enabled_list rs in
           if enabled = [] then begin
             if Array.exists (fun t -> t.status <> Finished) rs.thrs then begin
               let stuck =
                 Array.to_list rs.thrs
                 |> List.filter (fun t -> t.status <> Finished)
                 |> List.map (fun t -> string_of_int t.idx)
                 |> String.concat ", "
               in
               set_viol rs
                 (Printf.sprintf
                    "deadlock: threads [%s] blocked with no runnable thread"
                    stuck)
             end;
             running := false
           end
           else begin
             let chosen =
               match !forced with
               | c :: rest ->
                 forced := rest;
                 if List.mem c enabled then c
                 else begin
                   set_viol rs
                     (Printf.sprintf
                        "replay: thread %d is not enabled at step %d \
                         (enabled: [%s])"
                        c !step_no
                        (String.concat ", " (List.map string_of_int enabled)));
                   -1
                 end
               | [] -> (
                 let cands = candidates ~enabled ~prev:rs.prev in
                 match
                   List.find_opt
                     (budget_ok ~max_preemptions ~prev:rs.prev ~enabled
                        ~before:rs.preempts)
                     cands
                 with
                 | Some c -> c
                 | None -> List.hd cands)
             in
             if chosen >= 0 then begin
               rs.trail <-
                 {
                   p_enabled = enabled;
                   p_prev = rs.prev;
                   p_preempt_before = rs.preempts;
                   p_chosen = chosen;
                 }
                 :: rs.trail;
               rs.preempts <-
                 rs.preempts + switch_cost ~prev:rs.prev ~enabled chosen;
               rs.prev <- Some chosen;
               step rs chosen
             end
           end;
           incr step_no
         done;
         if rs.viol = None then begin
           Hashtbl.iter
             (fun _ l ->
               if l.owner <> None then
                 set_viol rs
                   (Printf.sprintf "lock '%s' still held at scenario end"
                      l.l_name))
             rs.locks;
           if rs.viol = None then
             match after with
             | None -> ()
             | Some f -> f ()
         end
       with Violation_exn msg -> set_viol rs msg);
      (List.rev rs.trail, rs.viol))

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

type outcome =
  | No_violation of { schedules : int; complete : bool }
  | Violation of { schedule : int list; message : string }

let schedule_of_trail trail = List.map (fun p -> p.p_chosen) trail

(* Deepest choice point with an untried budget-respecting alternative;
   the next schedule prefix replays everything above it and diverges
   there. *)
let next_prefix ~max_preemptions trail =
  let arr = Array.of_list trail in
  let rec after_chosen chosen = function
    | [] -> []
    | x :: rest -> if x = chosen then rest else after_chosen chosen rest
  in
  let rec scan d =
    if d < 0 then None
    else
      let p = arr.(d) in
      let cands = candidates ~enabled:p.p_enabled ~prev:p.p_prev in
      let alts = after_chosen p.p_chosen cands in
      match
        List.find_opt
          (budget_ok ~max_preemptions ~prev:p.p_prev ~enabled:p.p_enabled
             ~before:p.p_preempt_before)
          alts
      with
      | Some c ->
        let prefix = Array.to_list (Array.sub arr 0 d) in
        Some (schedule_of_trail prefix @ [ c ])
      | None -> scan (d - 1)
  in
  scan (Array.length arr - 1)

let default_max_schedules = 4000

let explore ?max_preemptions ?(max_schedules = default_max_schedules) ?after
    scenario =
  let rec dfs forced count =
    let trail, viol = run_one ~max_preemptions ~forced ~after scenario in
    let count = count + 1 in
    match viol with
    | Some message -> Violation { schedule = schedule_of_trail trail; message }
    | None ->
      if count >= max_schedules then
        No_violation { schedules = count; complete = false }
      else (
        match next_prefix ~max_preemptions trail with
        | None -> No_violation { schedules = count; complete = true }
        | Some forced' -> dfs forced' count)
  in
  dfs [] 0

let replay ?after ~schedule scenario =
  let trail, viol =
    run_one ~max_preemptions:None ~forced:schedule ~after scenario
  in
  match viol with
  | Some message -> Violation { schedule = schedule_of_trail trail; message }
  | None -> No_violation { schedules = 1; complete = false }

let schedule_to_string s = String.concat "," (List.map string_of_int s)

let schedule_of_string s =
  match String.trim s with
  | "" -> []
  | s ->
    String.split_on_char ',' s
    |> List.map (fun tok ->
           match int_of_string_opt (String.trim tok) with
           | Some n -> n
           | None ->
             invalid_arg
               (Printf.sprintf "Explore.schedule_of_string: bad token %S" tok))

(* ------------------------------------------------------------------ *)
(* Scenario-side helpers                                               *)
(* ------------------------------------------------------------------ *)

type 'a var = {
  mutable v : 'a;
  cell_id : int;
  vname : string;
  track : bool;
}

let var ?(track = true) ~name v =
  { v; cell_id = Conc.fresh_id (); vname = name; track }

let get var =
  dispatch (R_cell { id = var.cell_id; cname = var.vname; write = false; track = var.track });
  var.v

let set var x =
  dispatch (R_cell { id = var.cell_id; cname = var.vname; write = true; track = var.track });
  var.v <- x

let check ok msg = if not ok then raise (Violation_exn msg)
let yield () = dispatch R_yield

let outcome_to_string = function
  | No_violation { schedules; complete } ->
    Printf.sprintf "no violation in %d schedule%s%s" schedules
      (if schedules = 1 then "" else "s")
      (if complete then " (state space exhausted)" else " (search capped)")
  | Violation { schedule; message } ->
    Printf.sprintf "violation under schedule [%s]: %s"
      (schedule_to_string schedule)
      message
