(** Process-wide structured, leveled event log.

    The CLI's ad-hoc stderr chatter and library warnings route through
    one logger, so verbosity is governed uniformly: [--quiet] and the
    [TFAPPROX_LOG] environment variable ({!env_var}) change one
    threshold and every subcommand obeys.  Events carry a level, a
    message and JSON fields; the default sink renders
    ["\[warn\] message k=v"] lines to stderr, and {!json_sink} switches
    to JSON-lines for machine consumption.  Emission is mutex-guarded,
    so worker domains may log concurrently; data output (metrics dumps,
    [--json] reports) stays on stdout and never goes through here. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option

type event = {
  level : level;
  message : string;
  fields : (string * Json.t) list;
  time : float;  (** Unix seconds *)
}

val event_to_json : event -> Json.t
(** [{"ts":...,"level":"warn","msg":"...", <fields>...}]. *)

type sink = event -> unit

val text_sink : ?channel:out_channel -> unit -> sink
(** ["\[level\] message k=v ..."] lines; default channel stderr. *)

val json_sink : ?channel:out_channel -> unit -> sink
(** One {!event_to_json} object per line; default channel stderr. *)

val set_threshold : level option -> unit
(** Minimum level that emits; [None] silences everything.  Default:
    [Some Info]. *)

val get_threshold : unit -> level option
val set_sink : sink -> unit

val enabled : level -> bool
(** Whether an event at this level would emit — guard expensive field
    construction with this. *)

val log : level -> ?fields:(string * Json.t) list -> string -> unit
val debug : ?fields:(string * Json.t) list -> string -> unit
val info : ?fields:(string * Json.t) list -> string -> unit
val warn : ?fields:(string * Json.t) list -> string -> unit
val error : ?fields:(string * Json.t) list -> string -> unit

val logf : level -> ('a, unit, string, unit) format4 -> 'a
(** Printf-style convenience; the message is built even when disabled,
    so keep hot paths on {!enabled} guards. *)

val env_var : string
(** ["TFAPPROX_LOG"]. *)

val configure : string -> unit
(** Apply a comma-separated spec: level names ([debug], [info], [warn],
    [error]), [off]/[silent]/[quiet]/[none], and sink selectors [json] /
    [text].  Unknown tokens are ignored.  E.g. ["debug,json"]. *)

val init_from_env : unit -> unit
(** {!configure} from [$TFAPPROX_LOG] when set; no-op otherwise. *)
