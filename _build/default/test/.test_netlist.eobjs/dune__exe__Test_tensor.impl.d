test/test_tensor.ml: Alcotest Ax_tensor List QCheck QCheck_alcotest
