lib/arith/registry.ml: Ax_netlist Drum Exact Faults Hashtbl Kulkarni Lazy List Lut Mitchell Printf Signedness String Truncation
