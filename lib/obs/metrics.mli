(** Named counters and gauges for the emulator hot paths.

    Counters are monotonic integers (LUT lookups, MACs, im2col bytes,
    texture-cache hits); gauges are instantaneous floats (images/sec,
    hit rate).  Handles returned by {!counter} / {!gauge} are plain
    mutable cells, so hot-path increments cost one integer addition and
    no hashing.  {!snapshot} / {!diff} give a before/after view of a
    region of interest; snapshots render to JSON and Prometheus text. *)

type t
type counter
type gauge

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create; fresh counters start at 0. *)

val incr : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment — counters are
    monotonic by contract. *)

val value : counter -> int

val add : t -> string -> int -> unit
(** [add t name n] = [incr (counter t name) n] — for cold call sites. *)

val gauge : t -> string -> gauge
(** Find-or-create; fresh gauges read 0. *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val set_gauge : t -> string -> float -> unit
(** [set_gauge t name v] = [set (gauge t name) v]. *)

val reset : t -> unit
(** Zero every counter and gauge (handles stay valid). *)

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;   (** sorted by name *)
  gauges : (string * float) list;   (** sorted by name *)
}

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter values become [after - before] (0 floor for counters that
    vanished across a reset); gauges keep their [after] reading. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> float option

val to_json : snapshot -> Json.t
(** [{"counters":{...},"gauges":{...}}]. *)

val to_prometheus : ?namespace:string -> snapshot -> string
(** Prometheus text exposition format; metric names are prefixed with
    [namespace] (default ["tfapprox"]) and sanitized to
    [[a-zA-Z0-9_]]. *)

val pp : Format.formatter -> snapshot -> unit
