(* Locks down PR "tiled ApproxGEMM + quantization edge cases":

   - a ~50-shape differential sweep proving the register/cache-blocked
     GEMM kernel is bit-identical to a test-local copy of the pre-tiling
     scalar kernel, for every accumulator model and both quantization
     granularities;
   - the raw-LUT accessor contract ([unsafe_raw]/[table] +
     [decode_correction] equals [lookup_code] over the entire table);
   - qcheck pinning of [Round.apply] tie-breaking against an
     integer-arithmetic reference (negative halves included);
   - the [filter_coeffs] Per_channel fixes (range intersection, finite
     coefficients for NaN/infinite channels);
   - domains validation at every entry point, and empty-batch plumbing
     through [Emulator.run];
   - the scratch arena's grow-only reuse contract. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Axconv = Ax_nn.Axconv
module Accumulator = Ax_nn.Accumulator
module Im2col = Ax_nn.Im2col
module Scratch = Ax_nn.Scratch
module Exec = Ax_nn.Exec
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module S = Ax_arith.Signedness
module Lut = Ax_arith.Lut
module Registry = Ax_arith.Registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Scalar reference kernel: the pre-tiling GEMM, kept verbatim as an
   oracle.  No chunking (chunking never changes a bit), no blocking,
   decoded lookups through [Lut.lookup_code], products in ascending tap
   order — the semantics the tiled kernel must preserve exactly.        *)
(* ------------------------------------------------------------------ *)

let scalar_reference ~config ~input ~input_range ~filter ~filter_range ?bias
    ~spec () =
  let lut = config.Axconv.lut in
  let signedness = Lut.signedness lut in
  let out_shape = Conv_spec.output_shape spec (Tensor.shape input) filter in
  let out = Tensor.create out_shape in
  let coeffs1 =
    Q.compute_coeffs signedness ~rmin:input_range.Range.min
      ~rmax:input_range.Range.max
  in
  let coeffs2 =
    Axconv.filter_coeffs config.Axconv.granularity signedness filter
      filter_range
  in
  let mf_t, sf =
    Axconv.quantize_filters_per_channel signedness coeffs2
      config.Axconv.round_mode filter
  in
  let taps = Filter.taps filter and out_c = Filter.out_c filter in
  let beta1 = coeffs1.Q.beta in
  let alpha12 = Array.map (fun c -> coeffs1.Q.alpha *. c.Q.alpha) coeffs2 in
  let beta2 = Array.map (fun c -> c.Q.beta) coeffs2 in
  let n_beta12 = Array.map (fun b2 -> taps * beta1 * b2) beta2 in
  let plan =
    Im2col.make (Tensor.shape input) ~kh:(Filter.kh filter)
      ~kw:(Filter.kw filter) ~spec
  in
  let mp, sp =
    Im2col.to_codes plan input ~coeffs:coeffs1
      ~round_mode:config.Axconv.round_mode ~signedness
  in
  let out_buf = Tensor.buffer out in
  let accumulator = config.Axconv.accumulator in
  for row = 0 to plan.Im2col.rows - 1 do
    for k = 0 to out_c - 1 do
      let acc = ref 0 in
      for p = 0 to taps - 1 do
        let ca = Char.code (Bytes.get mp ((row * taps) + p)) in
        let cb = Char.code (Bytes.get mf_t ((k * taps) + p)) in
        let v = Lut.lookup_code lut ca cb in
        acc :=
          (match accumulator with
          | Accumulator.Wide -> !acc + v
          | _ -> Accumulator.add accumulator !acc v)
      done;
      let corrected =
        !acc - (beta2.(k) * sp.(row)) - (beta1 * sf.(k)) + n_beta12.(k)
      in
      let v = alpha12.(k) *. float_of_int corrected in
      let v = match bias with Some b -> v +. b.(k) | None -> v in
      out_buf.{(row * out_c) + k} <- v
    done
  done;
  out

(* ------------------------------------------------------------------ *)
(* Differential sweep                                                  *)
(* ------------------------------------------------------------------ *)

let accumulators =
  [
    Accumulator.Wide;
    Accumulator.Saturating 16;
    Accumulator.Wrapping 16;
    Accumulator.Lower_or { width = 20; approx_low = 4 };
  ]

let granularities = [ Axconv.Per_tensor; Axconv.Per_channel ]

let multipliers = [| "mul8u_exact"; "mul8u_trunc8"; "mul8s_exact" |]

let test_sweep () =
  let cases = ref 0 in
  for id = 0 to 49 do
    let rng = Rng.create (1000 + id) in
    let pick lo hi = lo + Rng.int rng (hi - lo + 1) in
    let n = pick 1 3 in
    let h = pick 4 10 and w = pick 4 10 in
    let c = pick 1 6 and out_c = pick 1 10 in
    let kh = pick 1 3 and kw = pick 1 3 in
    let stride = pick 1 2 in
    let padding = if Rng.int rng 2 = 0 then Conv_spec.Same else Conv_spec.Valid in
    let spec = Conv_spec.make ~stride ~padding () in
    let chunk_size = pick 1 n in
    let input = Tensor.create (Shape.make ~n ~h ~w ~c) in
    Tensor.fill_uniform ~lo:(-1.2) ~hi:1.2 rng input;
    let filter = Filter.create ~kh ~kw ~in_c:c ~out_c in
    Filter.fill_he_normal rng filter;
    let input_range = Range.of_tensor input in
    let fmin, fmax = Filter.min_max filter in
    let filter_range = Range.make ~min:fmin ~max:fmax in
    let entry = Registry.find_exn multipliers.(id mod 3) in
    let bias =
      if id mod 2 = 0 then Some (Array.init out_c (fun k -> 0.01 *. float_of_int k))
      else None
    in
    List.iter
      (fun accumulator ->
        List.iter
          (fun granularity ->
            let config =
              Axconv.make_config ~chunk_size ~granularity ~accumulator
                (Registry.lut entry)
            in
            let got =
              Axconv.conv ~config ~input ~input_range ~filter ~filter_range
                ?bias ~spec ()
            in
            let want =
              scalar_reference ~config ~input ~input_range ~filter
                ~filter_range ?bias ~spec ()
            in
            incr cases;
            check_bool
              (Printf.sprintf "case %d (%s, %s): tiled == scalar" id
                 (Accumulator.to_string accumulator)
                 (match granularity with
                 | Axconv.Per_tensor -> "per-tensor"
                 | Axconv.Per_channel -> "per-channel"))
              true
              (Tensor.max_abs_diff want got = 0.))
          granularities)
      accumulators
  done;
  check_bool "sweep ran 400 comparisons" true (!cases = 400)

(* ------------------------------------------------------------------ *)
(* Raw LUT accessor contract                                           *)
(* ------------------------------------------------------------------ *)

let test_raw_accessor () =
  List.iter
    (fun lut ->
      let corr = Lut.decode_correction lut in
      let table = Lut.table lut in
      let bad = ref 0 in
      for ca = 0 to 255 do
        for cb = 0 to 255 do
          let idx = (ca lsl 8) lor cb in
          let raw = Lut.unsafe_raw lut idx in
          let decoded = raw - ((raw lsr 15) * corr) in
          if decoded <> Lut.lookup_code lut ca cb then incr bad;
          if Bigarray.Array1.get table idx <> raw then incr bad
        done
      done;
      check_int
        (Printf.sprintf "raw accessor decodes (%s)"
           (S.to_string (Lut.signedness lut)))
        0 !bad)
    [
      Lut.exact S.Unsigned;
      Lut.exact S.Signed;
      Registry.lut (Registry.find_exn "mul8u_trunc8");
    ]

(* ------------------------------------------------------------------ *)
(* Round.apply tie-breaking                                            *)
(* ------------------------------------------------------------------ *)

(* Integer reference for x = m/2 (every representable tie lives there):
   even m is exact; odd m ties between lo = (m-1)/2 and hi = lo+1 (m-1
   is even, so the division is exact even for negative m).  Float
   division by 2 is exact, so comparing on halves is comparing on the
   same values [Round.apply] sees. *)
let reference_on_half mode m =
  let open Round in
  if m mod 2 = 0 then m / 2
  else
    let lo = (m - 1) / 2 in
    let hi = lo + 1 in
    match mode with
    | Nearest_even -> if lo mod 2 = 0 then lo else hi
    | Nearest_away -> if m > 0 then hi else lo
    | Toward_zero -> if m > 0 then lo else hi
    | Stochastic -> invalid_arg "no deterministic reference"

let qcheck_half_ties =
  QCheck.Test.make ~name:"Round.apply on halves matches integer reference"
    ~count:500
    QCheck.(int_range (-2001) 2001)
    (fun m ->
      let x = float_of_int m /. 2. in
      List.for_all
        (fun mode -> Round.apply mode x = reference_on_half mode m)
        [ Round.Nearest_even; Round.Nearest_away; Round.Toward_zero ])

let qcheck_nearest =
  QCheck.Test.make
    ~name:"Round.apply nearest modes pick the closest integer off ties"
    ~count:500
    QCheck.(float_range (-1000.) 1000.)
    (fun x ->
      let frac = x -. Float.floor x in
      QCheck.assume (frac <> 0.5);
      let nearest = int_of_float (Float.round x) in
      Round.apply Round.Nearest_even x = nearest
      && Round.apply Round.Nearest_away x = nearest)

let test_tie_units () =
  let cases =
    [ (-2.5, -2); (-1.5, -2); (-0.5, 0); (0.5, 0); (1.5, 2); (2.5, 2) ]
  in
  List.iter
    (fun (x, want) ->
      check_int
        (Printf.sprintf "nearest-even %g" x)
        want
        (Round.apply Round.Nearest_even x))
    cases;
  check_int "nearest-away -2.5" (-3) (Round.apply Round.Nearest_away (-2.5));
  check_int "nearest-away 2.5" 3 (Round.apply Round.Nearest_away 2.5);
  check_int "toward-zero -2.5" (-2) (Round.apply Round.Toward_zero (-2.5));
  check_int "toward-zero 2.5" 2 (Round.apply Round.Toward_zero 2.5)

(* ------------------------------------------------------------------ *)
(* filter_coeffs Per_channel edge cases                                *)
(* ------------------------------------------------------------------ *)

let filter_of_channels channels =
  (* 1x1xN filter bank with one weight per output channel. *)
  let out_c = Array.length channels in
  let f = Filter.create ~kh:1 ~kw:1 ~in_c:1 ~out_c in
  Array.iteri (fun k v -> Filter.set f ~h:0 ~w:0 ~c:0 ~k v) channels;
  f

let finite_coeffs cs =
  Array.for_all (fun c -> Float.is_finite c.Q.alpha) cs

let test_per_channel_intersection () =
  (* Channel bounds wider than the supplied range are clipped to it
     (pre-fix, the supplied range was ignored entirely). *)
  let f = Filter.create ~kh:1 ~kw:1 ~in_c:2 ~out_c:2 in
  Filter.set f ~h:0 ~w:0 ~c:0 ~k:0 (-2.0);
  Filter.set f ~h:0 ~w:0 ~c:1 ~k:0 0.5;
  Filter.set f ~h:0 ~w:0 ~c:0 ~k:1 0.25;
  Filter.set f ~h:0 ~w:0 ~c:1 ~k:1 0.5;
  let range = Range.make ~min:(-1.) ~max:1. in
  let cs = Axconv.filter_coeffs Axconv.Per_channel S.Signed f range in
  let clipped = Q.compute_coeffs S.Signed ~rmin:(-1.) ~rmax:0.5 in
  check_bool "overflowing channel clipped to the supplied range" true
    (cs.(0).Q.alpha = clipped.Q.alpha && cs.(0).Q.beta = clipped.Q.beta);
  let own = Q.compute_coeffs S.Signed ~rmin:0.25 ~rmax:0.5 in
  check_bool "in-range channel keeps its own bounds" true
    (cs.(1).Q.alpha = own.Q.alpha && cs.(1).Q.beta = own.Q.beta);
  (* A channel disjoint from the supplied range has an empty
     intersection: it degrades to the full supplied range rather than an
     inverted one. *)
  let f_disjoint = filter_of_channels [| -2.0; 0.5 |] in
  let cs = Axconv.filter_coeffs Axconv.Per_channel S.Signed f_disjoint range in
  let fallback = Q.compute_coeffs S.Signed ~rmin:(-1.) ~rmax:1. in
  check_bool "disjoint channel falls back to the supplied range" true
    (cs.(0).Q.alpha = fallback.Q.alpha && cs.(0).Q.beta = fallback.Q.beta);
  (* Honest ranges (range covers every channel) are a no-op: identical
     to quantizing over the observed per-channel bounds. *)
  let rng = Rng.create 77 in
  let f2 = Filter.create ~kh:3 ~kw:3 ~in_c:2 ~out_c:4 in
  Filter.fill_he_normal rng f2;
  let fmin, fmax = Filter.min_max f2 in
  let cs2 =
    Axconv.filter_coeffs Axconv.Per_channel S.Signed f2
      (Range.make ~min:fmin ~max:fmax)
  in
  let mins = Array.make 4 infinity and maxs = Array.make 4 neg_infinity in
  Filter.iter f2 (fun ~h:_ ~w:_ ~c:_ ~k v ->
      if v < mins.(k) then mins.(k) <- v;
      if v > maxs.(k) then maxs.(k) <- v);
  Array.iteri
    (fun k c ->
      let want = Q.compute_coeffs S.Signed ~rmin:mins.(k) ~rmax:maxs.(k) in
      check_bool
        (Printf.sprintf "honest range is a no-op (channel %d)" k)
        true
        (c.Q.alpha = want.Q.alpha && c.Q.beta = want.Q.beta))
    cs2

let test_per_channel_degenerate () =
  let range = Range.make ~min:(-1.) ~max:1. in
  (* NaN weights never poison bounds comparisons: the channel falls back
     to the supplied range with finite coefficients. *)
  let f_nan = filter_of_channels [| Float.nan; 0.25 |] in
  let cs = Axconv.filter_coeffs Axconv.Per_channel S.Signed f_nan range in
  check_bool "NaN channel yields finite coeffs" true (finite_coeffs cs);
  let fallback = Q.compute_coeffs S.Signed ~rmin:(-1.) ~rmax:1. in
  check_bool "NaN channel falls back to the supplied range" true
    (cs.(0).Q.alpha = fallback.Q.alpha && cs.(0).Q.beta = fallback.Q.beta);
  (* Infinite weights likewise. *)
  let f_inf = filter_of_channels [| Float.infinity; 0.25 |] in
  let cs = Axconv.filter_coeffs Axconv.Per_channel S.Signed f_inf range in
  check_bool "infinite channel yields finite coeffs" true (finite_coeffs cs);
  (* Both the channel and the supplied range unusable: degrade to the
     all-zero range, still finite (alpha = 1/qmax). *)
  let bad_range = Range.make ~min:neg_infinity ~max:infinity in
  let cs =
    Axconv.filter_coeffs Axconv.Per_channel S.Signed f_nan bad_range
  in
  check_bool "unusable range still yields finite coeffs" true
    (finite_coeffs cs);
  (* Constant (zero-span) channels already worked; pin them too. *)
  let f_const = filter_of_channels [| 0.; 0.7 |] in
  let cs = Axconv.filter_coeffs Axconv.Per_channel S.Signed f_const range in
  check_bool "constant channel yields finite coeffs" true (finite_coeffs cs)

(* ------------------------------------------------------------------ *)
(* Domains validation + empty batch                                    *)
(* ------------------------------------------------------------------ *)

let lut_u = Lut.exact S.Unsigned

let test_domains_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "make_config rejects domains 0" true
    (raises (fun () -> Axconv.make_config ~domains:0 lut_u));
  check_bool "make_config rejects domains 65" true
    (raises (fun () -> Axconv.make_config ~domains:65 lut_u));
  check_bool "make_config accepts domains 64" true
    (match Axconv.make_config ~domains:64 lut_u with
    | _ -> true
    | exception _ -> false);
  let g =
    Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_exact"
      (Ax_models.Resnet.build ~depth:8 ())
  in
  let data = (Ax_data.Cifar.generate ~n:1 ()).Ax_data.Cifar.images in
  check_bool "Emulator.run rejects domains 65" true
    (raises (fun () ->
         Tfapprox.Emulator.run ~domains:65 ~backend:Tfapprox.Emulator.Cpu_gemm
           g data));
  check_bool "Emulator.run rejects domains 0" true
    (raises (fun () ->
         Tfapprox.Emulator.run ~domains:0 ~backend:Tfapprox.Emulator.Cpu_gemm g
           data))

let test_empty_batch () =
  let g =
    Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_exact"
      (Ax_models.Resnet.build ~depth:8 ())
  in
  let empty = (Ax_data.Cifar.generate ~n:0 ()).Ax_data.Cifar.images in
  check_int "empty dataset generates zero images" 0
    Shape.((Tensor.shape empty).n);
  let out = Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_gemm g empty in
  let s = Tensor.shape out in
  check_bool "empty batch yields an empty output of the right shape" true
    (Shape.(s.n) = 0 && Shape.(s.h) = 1 && Shape.(s.w) = 1 && Shape.(s.c) = 10);
  (* The sharded path is gated the same way. *)
  let out2 =
    Tfapprox.Emulator.run ~domains:2 ~backend:Tfapprox.Emulator.Cpu_gemm g
      empty
  in
  check_bool "empty batch with domains yields the same shape" true
    (Shape.equal s (Tensor.shape out2));
  check_int "predictions on an empty batch" 0
    (Array.length
       (Tfapprox.Emulator.predictions ~backend:Tfapprox.Emulator.Cpu_gemm g
          empty));
  check_bool "accuracy refuses an empty dataset" true
    (match
       Tfapprox.Emulator.accuracy ~backend:Tfapprox.Emulator.Cpu_gemm g
         (Ax_data.Cifar.generate ~n:0 ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* output_shape agrees with a real run on a non-empty batch. *)
  let data = (Ax_data.Cifar.generate ~n:2 ()).Ax_data.Cifar.images in
  let real =
    Tensor.shape (Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_gemm g data)
  in
  check_bool "output_shape matches a real run" true
    (Shape.equal real (Exec.output_shape g ~input:(Tensor.shape data)))

(* ------------------------------------------------------------------ *)
(* Scratch arena                                                       *)
(* ------------------------------------------------------------------ *)

let test_scratch_reuse () =
  let s = Scratch.create () in
  let b1 = Scratch.mp s 100 in
  check_bool "mp at least the requested length" true (Bytes.length b1 >= 100);
  let b2 = Scratch.mp s 50 in
  check_bool "smaller request reuses the same buffer" true (b1 == b2);
  let b3 = Scratch.mp s (Bytes.length b1 + 1) in
  check_bool "larger request grows" true
    (Bytes.length b3 > Bytes.length b1);
  let a1 = Scratch.acc s 10 and sp1 = Scratch.sp s 10 in
  check_bool "acc and sp are distinct buffers" true (not (a1 == sp1));
  let a2 = Scratch.acc s 4 in
  check_bool "acc reused" true (a1 == a2);
  check_bool "domain_local is stable on a domain" true
    (Scratch.domain_local () == Scratch.domain_local ());
  (* to_codes_range validates its row range against the plan. *)
  let input = Tensor.create (Shape.make ~n:1 ~h:4 ~w:4 ~c:1) in
  let plan = Im2col.make (Tensor.shape input) ~kh:3 ~kw:3 ~spec:Conv_spec.default in
  let coeffs = Q.compute_coeffs S.Unsigned ~rmin:0. ~rmax:1. in
  check_bool "to_codes_range rejects an out-of-plan range" true
    (match
       Im2col.to_codes_range ~scratch:s plan input ~row_lo:0
         ~row_hi:(plan.Im2col.rows + 1) ~coeffs
         ~round_mode:Round.Nearest_even ~signedness:S.Unsigned
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "gemm_tiled"
    [
      ( "differential",
        [
          Alcotest.test_case "tiled == scalar reference (50 shapes x 4 \
                              accumulators x 2 granularities)" `Quick test_sweep;
        ] );
      ( "lut",
        [ Alcotest.test_case "raw accessor contract" `Quick test_raw_accessor ]
      );
      ( "rounding",
        [
          QCheck_alcotest.to_alcotest qcheck_half_ties;
          QCheck_alcotest.to_alcotest qcheck_nearest;
          Alcotest.test_case "tie units" `Quick test_tie_units;
        ] );
      ( "filter_coeffs",
        [
          Alcotest.test_case "per-channel range intersection" `Quick
            test_per_channel_intersection;
          Alcotest.test_case "per-channel degenerate channels" `Quick
            test_per_channel_degenerate;
        ] );
      ( "edges",
        [
          Alcotest.test_case "domains validation" `Quick
            test_domains_validation;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
        ] );
      ( "scratch",
        [ Alcotest.test_case "arena reuse and growth" `Quick test_scratch_reuse ]
      );
    ]
