(** Shared-cell annotations for the race detector.  A cell names one
    logical shared location; call {!read}/{!write} next to the actual
    access.  Zero-cost when the layer is off; in record mode accesses
    feed the FastTrack vector-clock detector, and during exploration
    the explorer's per-run detector.  Cells are per-instance: two pools
    annotating "pool.job" get independent detector state. *)

type cell

val cell : string -> cell
val name : cell -> string
val read : cell -> unit
val write : cell -> unit
