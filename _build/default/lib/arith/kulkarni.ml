let mul2x2 a b =
  if a < 0 || a > 3 || b < 0 || b > 3 then
    invalid_arg "Kulkarni.mul2x2: operand out of range";
  if a = 3 && b = 3 then 7 else a * b

let rec multiply ~bits a b =
  if bits < 2 || bits land (bits - 1) <> 0 then
    invalid_arg "Kulkarni.multiply: bits must be a power of two >= 2";
  if bits = 2 then mul2x2 a b
  else begin
    let half = bits / 2 in
    let mask = (1 lsl half) - 1 in
    let al = a land mask and ah = a lsr half in
    let bl = b land mask and bh = b lsr half in
    let ll = multiply ~bits:half al bl in
    let lh = multiply ~bits:half al bh in
    let hl = multiply ~bits:half ah bl in
    let hh = multiply ~bits:half ah bh in
    ll + ((lh + hl) lsl half) + (hh lsl (2 * half))
  end
