lib/arith/lut.ml: Bigarray Bytes Char Exact Fun Signedness String
