type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;
  dur_us : float;
  depth : int;
  tid : int;
}

type t = {
  capacity : int;
  ring : span option array;
  mutable next : int;      (* ring write cursor *)
  mutable recorded : int;  (* completed spans ever, including evicted *)
  mutable depth : int;     (* currently open spans *)
  epoch : float;
  tid : int;
  mutable ext_dropped : int;  (* drops inherited from merged forks *)
}

let default_capacity = 65536
let fork_capacity = 4096

let create_with ~capacity ~tid ~epoch =
  if capacity < 1 then invalid_arg "Trace.create: capacity";
  {
    capacity;
    ring = Array.make capacity None;
    next = 0;
    recorded = 0;
    depth = 0;
    epoch;
    tid;
    ext_dropped = 0;
  }

let create ?(capacity = default_capacity) ?(tid = 0) () =
  create_with ~capacity ~tid ~epoch:(Unix.gettimeofday ())

(* A fork shares the parent's time origin, so merged spans line up on
   one timeline, and stamps its own [tid] — one fork per worker slot is
   the single-writer-per-domain discipline that keeps tracing safe
   without locks.  Forks are deliberately small (spans, not bytes, and
   a fan-out records few of them); drops are surfaced on merge. *)
let fork ?(capacity = fork_capacity) t ~tid =
  create_with ~capacity ~tid ~epoch:t.epoch

let record t span =
  t.ring.(t.next) <- Some span;
  t.next <- (t.next + 1) mod t.capacity;
  t.recorded <- t.recorded + 1

let with_span t ~name ?(attrs = []) f =
  let depth = t.depth in
  t.depth <- depth + 1;
  let start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let stop = Unix.gettimeofday () in
      t.depth <- depth;
      let start_us = (start -. t.epoch) *. 1e6 in
      (* The float subtraction quantizes to ~0.1 us; floor the duration
         so no span exports as zero-length. *)
      let dur_us = Float.max ((stop -. start) *. 1e6) 0.001 in
      record t { name; attrs; start_us; dur_us; depth; tid = t.tid })
    f

let spans t =
  let n = min t.recorded t.capacity in
  let first = if t.recorded <= t.capacity then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let span_count t = min t.recorded t.capacity
let dropped t = max 0 (t.recorded - t.capacity) + t.ext_dropped

(* Coordinator-side, after the join: append [src]'s spans (their own
   tids intact) and inherit its drop count.  Callers merge forks in
   slot order, so the merged stream is deterministic for a fixed
   split. *)
let merge ~into src =
  List.iter (fun s -> record into s) (spans src);
  into.ext_dropped <- into.ext_dropped + dropped src

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.recorded <- 0;
  t.ext_dropped <- 0

let to_chrome_json t =
  let event s =
    Json.Obj
      [
        ("name", Json.String s.name);
        ("cat", Json.String "tfapprox");
        ("ph", Json.String "X");
        ("ts", Json.Float s.start_us);
        ("dur", Json.Float s.dur_us);
        ("pid", Json.Int 1);
        ("tid", Json.Int s.tid);
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs) );
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event (spans t)));
      ("displayTimeUnit", Json.String "ms");
    ]

let chrome_json_string t = Json.to_string (to_chrome_json t)

let pp_tree ppf t =
  let by_start =
    List.stable_sort
      (fun a b ->
        match compare a.start_us b.start_us with
        | 0 -> compare a.depth b.depth
        | c -> c)
      (spans t)
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s : span) ->
      Format.fprintf ppf "%s%s %.3f ms" (String.make (2 * s.depth) ' ')
        s.name (s.dur_us /. 1e3);
      if s.tid <> 0 then Format.fprintf ppf " [d%d]" s.tid;
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) s.attrs;
      Format.fprintf ppf "@,")
    by_start;
  if dropped t > 0 then
    Format.fprintf ppf "(... %d earlier spans evicted)@," (dropped t);
  Format.fprintf ppf "@]"
