lib/nn/exec.mli: Ax_tensor Graph Profile
