lib/arith/kulkarni.ml:
