(** Top-level drivers combining the analyzers — the engine behind the
    [tfapprox check] subcommand and the emulator's pre-flight
    verification. *)

val graph :
  ?input:Ax_tensor.Shape.t ->
  Ax_nn.Graph.t ->
  Diagnostic.t list * Quant_check.layer list
(** {!Graph_check.check} plus {!Quant_check.check}: every structural,
    wiring and quantization finding, and the per-layer accumulator
    report. *)

val multiplier :
  ?lut:Ax_arith.Lut.t -> Ax_netlist.Multipliers.t -> Diagnostic.t list
(** {!Netlist_check.check_multiplier}. *)

val registry_entry : Ax_arith.Registry.entry -> Diagnostic.t list
(** Tabulate the entry ({!Ax_arith.Registry.lut}) and check the table;
    netlist-derived entries additionally get their gate-level circuit
    analyzed and BDD-certified against that LUT. *)

(** {1 Pre-flight}

    {!Emulator.run} verifies each graph once before executing it, so a
    miswired or overflow-prone model fails loudly at the door instead
    of producing silently wrong accuracies.  Set the environment
    variable [TFAPPROX_NO_CHECK] (to any value) to opt out, e.g. for
    deliberately-broken fault-injection graphs. *)

val enabled : unit -> bool
(** False iff [TFAPPROX_NO_CHECK] is set in the environment. *)

val assert_runnable : ?input:Ax_tensor.Shape.t -> Ax_nn.Graph.t -> unit
(** Raises {!Diagnostic.Rejected} with the error-severity findings if
    the graph fails {!graph}; warnings and infos never reject.  Results
    are cached by physical graph identity (bounded), so per-batch and
    per-trial callers pay the analysis once; a no-op when not
    {!enabled}. *)
