(** Catalogue of 8-bit multipliers available to the emulator.

    Plays the role the EvoApprox8b library plays for the original
    TFApprox: a named collection of candidate designs whose truth tables
    can be dropped into the accelerator model.  Two provenances exist:
    fast behavioural models, and functions extracted by exhaustively
    simulating a gate-level netlist from {!Ax_netlist} (the flow a real
    approximate-circuit library is produced with). *)

type provenance =
  | Behavioural      (** closed-form arithmetic model *)
  | Netlist_derived  (** exhaustive simulation of a gate netlist *)

type entry = {
  name : string;
  description : string;
  signedness : Signedness.t;
  provenance : provenance;
  multiply : int -> int -> int;  (** value-domain product *)
  netlist : (unit -> Ax_netlist.Multipliers.t) option;
      (** the gate-level source of a {!Netlist_derived} entry, exposed
          so the static analyzer can certify the tabulated LUT against
          the circuit itself ([None] for behavioural models) *)
}

val all : unit -> entry list
(** Every catalogued multiplier (built-ins plus {!register}ed ones).
    Netlist-derived entries are simulated lazily on first
    multiplication. *)

val register : entry -> unit
(** Add a user-defined multiplier (e.g. a {!Search} finalist) to the
    catalogue, making it addressable by name everywhere a registry name
    is accepted.  Raises [Invalid_argument] on a duplicate name. *)

val names : unit -> string list
val find : string -> entry option
val find_exn : string -> entry
(** Raises [Failure] listing the known names when the lookup fails. *)

val lut : entry -> Lut.t
(** Tabulate an entry (cached per entry name). *)

val exact_for : Signedness.t -> entry
(** The exact multiplier of the given signedness. *)
