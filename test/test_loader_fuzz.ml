(* Seeded fuzzing of the two artefact loaders.

   The hardened AXLUT1/AXMDL1 formats promise totality: any byte string
   — truncated, bit-flipped, or pure garbage — decodes to a typed
   [Ax_arith.Load_error.t], never an unchecked exception
   (Index_out_of_bounds, Out_of_memory from a corrupted length prefix,
   ...) and never a silent wrong success.  QCheck drives the promise
   over three corruption families for each loader. *)

module Lut = Ax_arith.Lut
module Load_error = Ax_arith.Load_error
module Model_io = Ax_nn.Model_io
module Registry = Ax_arith.Registry

let seed = 0xF00D

let lut_bytes =
  lazy (Lut.to_bytes (Registry.lut (Registry.find_exn "mul8u_trunc8")))

let model_bytes =
  lazy (Model_io.to_bytes (Ax_models.Lenet.build ()))

(* A loader outcome is acceptable when it is [Ok] of the pristine input
   or any typed [Error]; anything escaping as an exception fails. *)
let total_or_fail ~what f =
  match f () with
  | Ok _ | Error _ -> true
  | exception Load_error.Error _ ->
    Alcotest.failf "%s: raising API leaked through result API" what
  | exception e ->
    Alcotest.failf "%s: unchecked exception %s" what (Printexc.to_string e)

let lut_load bytes = Lut.of_bytes_result bytes ~pos:0

let model_load bytes = Model_io.of_bytes_result bytes

let truncate_test ~what ~pristine ~load =
  QCheck.Test.make ~count:120
    ~name:(what ^ ": truncation is a typed error")
    QCheck.(int_range 0 (Bytes.length (Lazy.force pristine) - 1))
    (fun len ->
      let cut = Bytes.sub (Lazy.force pristine) 0 len in
      total_or_fail ~what (fun () -> load cut)
      &&
      match load cut with
      | Error _ -> true
      | Ok _ ->
        (* a strict prefix that still decodes would be a framing hole *)
        false)

let bitflip_test ~what ~pristine ~load =
  QCheck.Test.make ~count:200
    ~name:(what ^ ": any single bit flip is detected")
    QCheck.(
      pair
        (int_range 0 (Bytes.length (Lazy.force pristine) - 1))
        (int_range 0 7))
    (fun (pos, bit) ->
      let b = Bytes.copy (Lazy.force pristine) in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      total_or_fail ~what (fun () -> load b)
      &&
      match load b with
      | Error _ -> true
      | Ok _ -> false (* CRC-32 detects every single-bit corruption *))

let garbage_test ~what ~load =
  QCheck.Test.make ~count:300 ~name:(what ^ ": garbage is a typed error")
    QCheck.(string_of_size (Gen.int_range 0 4096))
    (fun s ->
      total_or_fail ~what (fun () -> load (Bytes.of_string s))
      &&
      match load (Bytes.of_string s) with
      | Error _ -> true
      | Ok _ -> String.length s = 0 && false)

(* Garbage wearing a valid header: random payloads behind the real
   magic, exercising the parser past the first gate. *)
let headed_garbage_test ~what ~magic ~load =
  QCheck.Test.make ~count:300
    ~name:(what ^ ": garbage behind a real magic is a typed error")
    QCheck.(string_of_size (Gen.int_range 0 4096))
    (fun s ->
      let b = Bytes.of_string (magic ^ s) in
      total_or_fail ~what (fun () -> load b)
      &&
      match load b with Error _ -> true | Ok _ -> false)

let raising_wrapper_test () =
  (* The raising APIs must raise exactly Load_error.Error on the same
     inputs the result APIs reject. *)
  let bad = Bytes.of_string "AXLUT1-not-really" in
  (match Lut.of_bytes bad ~pos:0 with
  | exception Load_error.Error _ -> ()
  | exception e -> Alcotest.failf "Lut wrapper: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "Lut wrapper accepted garbage");
  match Model_io.of_bytes (Bytes.of_string "AXMDL1-not-really") with
  | exception Load_error.Error _ -> ()
  | exception e -> Alcotest.failf "Model_io wrapper: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "Model_io wrapper accepted garbage"

let error_strings_are_one_line () =
  let errors =
    [
      Load_error.Truncated { what = "AXLUT1"; needed = 10; available = 3 };
      Load_error.Bad_magic { what = "AXMDL1"; expected = "AXMDL1"; actual = "junk\xff" };
      Load_error.Bad_checksum { what = "AXLUT1"; expected = 1; actual = 2 };
      Load_error.Bad_tag { what = "AXMDL1"; field = "op"; tag = 99 };
      Load_error.Malformed { what = "AXMDL1"; detail = "trailing bytes" };
    ]
  in
  List.iter
    (fun e ->
      let s = Load_error.to_string e in
      if String.contains s '\n' then
        Alcotest.failf "multi-line error rendering: %S" s;
      if String.length s = 0 then Alcotest.fail "empty error rendering")
    errors

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |])) tests)

let () =
  Alcotest.run "loader_fuzz"
    [
      qsuite "lut"
        [
          truncate_test ~what:"lut" ~pristine:lut_bytes ~load:lut_load;
          bitflip_test ~what:"lut" ~pristine:lut_bytes ~load:lut_load;
          garbage_test ~what:"lut" ~load:lut_load;
          headed_garbage_test ~what:"lut" ~magic:"AXLUT1" ~load:lut_load;
        ];
      qsuite "model"
        [
          truncate_test ~what:"model" ~pristine:model_bytes ~load:model_load;
          bitflip_test ~what:"model" ~pristine:model_bytes ~load:model_load;
          garbage_test ~what:"model" ~load:model_load;
          headed_garbage_test ~what:"model" ~magic:"AXMDL1" ~load:model_load;
        ];
      ( "wrappers",
        [
          Alcotest.test_case "raising APIs raise typed errors" `Quick
            raising_wrapper_test;
          Alcotest.test_case "error strings one-line" `Quick
            error_strings_are_one_line;
        ] );
    ]
