(* The benchmark-trajectory tracker behind `bench -- history` and the
   `perf` CLI subcommand: snapshot parsing, JSON-lines history handling
   (including corrupt lines), best-of-history baselining, and the
   regression gate's verdicts in both directions. *)

module Perf = Tfapprox.Perf
module Json = Ax_obs.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let record ?(label = "r") ?(bench = Perf.default_bench) ?(images = 2)
    ?ns_per_mac throughput =
  {
    Perf.label;
    bench;
    images;
    throughput =
      List.map
        (fun (domains, ips) ->
          { Perf.domains; seconds = 1.0; images_per_sec = ips })
        throughput;
    ns_per_mac;
    lut_compression = None;
  }

(* --- parsing --- *)

let bench_gemm_json =
  {|{"images": 2,
     "throughput": [
       {"domains": 1, "seconds": 0.5, "images_per_sec": 4.0},
       {"domains": 4, "seconds": 0.2, "images_per_sec": 10.0}],
     "micro": {"ns_per_mac": 25.0},
     "alloc": {"per_chunk_words": 0}}|}

let test_record_of_json () =
  let r = Perf.record_of_json ~label:"fallback" (Json.parse bench_gemm_json) in
  check_string "fallback label used" "fallback" r.Perf.label;
  check_int "images" 2 r.Perf.images;
  check_bool "d1 throughput" true (Perf.throughput_of r 1 = Some 4.0);
  check_bool "d4 throughput" true (Perf.throughput_of r 4 = Some 10.0);
  check_bool "unknown domain count" true (Perf.throughput_of r 2 = None);
  check_bool "ns/MAC from micro" true (r.Perf.ns_per_mac = Some 25.0);
  (* Unknown shapes degrade, they don't raise. *)
  let empty = Perf.record_of_json (Json.parse {|{"unrelated": true}|}) in
  check_bool "missing fields degrade" true
    (empty.Perf.throughput = [] && empty.Perf.ns_per_mac = None)

let test_record_json_round_trip () =
  let r = record ~label:"2026-08-08T00:00:00Z" ~ns_per_mac:12.5
      [ (1, 3.0); (4, 9.0) ]
  in
  let r' = Perf.record_of_json (Json.parse (Json.to_string (Perf.record_to_json r))) in
  check_bool "round trip" true (r = r');
  let no_mac = record [ (1, 3.0) ] in
  let no_mac' =
    Perf.record_of_json (Json.parse (Json.to_string (Perf.record_to_json no_mac)))
  in
  check_bool "absent ns/MAC stays absent" true (no_mac'.Perf.ns_per_mac = None);
  let comp =
    {
      (record ~ns_per_mac:2.2 [ (1, 3.0) ]) with
      Perf.lut_compression =
        Some
          {
            Perf.multiplier = "mul8u_trunc8";
            comp_mode = "split-factored";
            comp_bytes = 6144;
            comp_ratio = 21.3;
          };
    }
  in
  let comp' =
    Perf.record_of_json (Json.parse (Json.to_string (Perf.record_to_json comp)))
  in
  check_bool "lut compression round trips" true (comp = comp');
  (* Pre-compression history lines keep parsing: the member is optional. *)
  check_bool "absent compression stays absent" true
    (no_mac'.Perf.lut_compression = None)

let test_utc_label_shape () =
  let l = Perf.utc_label () in
  check_int "length" 20 (String.length l);
  check_bool "date/time separator" true (l.[10] = 'T');
  check_bool "zulu suffix" true (l.[19] = 'Z')

(* --- history file --- *)

let with_temp_file f =
  let path = Filename.temp_file "tfapprox_perf" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_history_round_trip_and_corruption () =
  check_bool "missing file is empty history" true
    (Perf.load_history "/nonexistent/tfapprox.jsonl" = []);
  with_temp_file (fun path ->
      Perf.append_history path (record ~label:"a" [ (1, 2.0) ]);
      Perf.append_history path (record ~label:"b" [ (1, 3.0) ]);
      (* A killed run can leave a truncated line; later appends follow. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"label\": \"trunc\n";
      close_out oc;
      Perf.append_history path (record ~label:"c" [ (1, 4.0) ]);
      let history = Perf.load_history path in
      Alcotest.(check (list string))
        "order kept, corrupt line skipped" [ "a"; "b"; "c" ]
        (List.map (fun r -> r.Perf.label) history))

(* --- gate --- *)

let test_compare_records_directions () =
  let baseline = record ~ns_per_mac:10.0 [ (1, 10.0); (4, 30.0) ] in
  (* d1 collapsed, d4 fine, ns/MAC blew up. *)
  let current = record ~ns_per_mac:20.0 [ (1, 5.0); (4, 29.0) ] in
  let verdicts =
    Perf.compare_records ~threshold:0.2 ~baseline ~current
  in
  check_int "one verdict per comparable metric" 3 (List.length verdicts);
  let by_metric m =
    List.find (fun v -> v.Perf.metric = m) verdicts
  in
  check_bool "throughput drop regresses" true
    (by_metric "images_per_sec_d1").Perf.regressed;
  check_bool "small drop within threshold" false
    (by_metric "images_per_sec_d4").Perf.regressed;
  check_bool "ns/MAC rise regresses" true (by_metric "ns_per_mac").Perf.regressed;
  check_bool "gate verdict" true (Perf.regressed verdicts);
  (* Faster is never a regression, whatever the threshold. *)
  let improved = record ~ns_per_mac:5.0 [ (1, 40.0); (4, 90.0) ] in
  check_bool "improvement passes" false
    (Perf.regressed (Perf.compare_records ~threshold:0.01 ~baseline ~current:improved));
  (* Metrics absent from the baseline are skipped, not judged. *)
  let sparse = record [ (8, 1.0) ] in
  check_bool "missing baseline skipped" true
    (Perf.compare_records ~threshold:0.2 ~baseline ~current:sparse = [])

let test_best_of_history () =
  check_bool "empty history" true (Perf.best_of [] = None);
  let history =
    [
      record ~label:"old" ~ns_per_mac:30.0 [ (1, 2.0) ];
      record ~label:"peak" ~ns_per_mac:20.0 [ (1, 6.0); (4, 12.0) ];
      record ~label:"slump" ~ns_per_mac:40.0 [ (1, 3.0); (4, 15.0) ];
    ]
  in
  match Perf.best_of history with
  | None -> Alcotest.fail "expected a baseline"
  | Some best ->
    check_bool "d1 peak" true (Perf.throughput_of best 1 = Some 6.0);
    check_bool "d4 peak from a later record" true
      (Perf.throughput_of best 4 = Some 15.0);
    check_bool "ns/MAC minimum" true (best.Perf.ns_per_mac = Some 20.0)

let test_gate_against_history () =
  let current = record [ (1, 5.0) ] in
  check_bool "no history, no verdicts" true
    (Perf.gate ~threshold:0.2 ~history:[] ~current = []);
  let history = [ record [ (1, 100.0) ] ] in
  let verdicts = Perf.gate ~threshold:0.2 ~history ~current in
  check_bool "synthetic regression caught" true (Perf.regressed verdicts);
  let ok = Perf.gate ~threshold:0.2 ~history:[ record [ (1, 5.5) ] ] ~current in
  check_bool "within threshold passes" false (Perf.regressed ok)

(* The shared history file interleaves gemm and explore records; the
   gate must only baseline against records of the current run's kind,
   or a fast explore evals/s line would permanently "regress" every
   subsequent gemm run (and vice versa). *)
let test_gate_partitions_by_bench () =
  let r = Perf.record_of_json (Json.parse bench_gemm_json) in
  check_string "missing bench member parses as gemm" Perf.default_bench
    r.Perf.bench;
  let explore = record ~bench:"explore" ~label:"e" [ (1, 500.0) ] in
  let explore' =
    Perf.record_of_json (Json.parse (Json.to_string (Perf.record_to_json explore)))
  in
  check_string "bench member round trips" "explore" explore'.Perf.bench;
  let history =
    [ record ~label:"gemm-base" [ (1, 10.0) ]; explore ]
  in
  let current_gemm = record ~label:"gemm-now" [ (1, 9.0) ] in
  check_bool "gemm gated against gemm only" false
    (Perf.regressed (Perf.gate ~threshold:0.2 ~history ~current:current_gemm));
  let slow_explore = record ~bench:"explore" ~label:"e2" [ (1, 100.0) ] in
  check_bool "explore gated against explore only" true
    (Perf.regressed (Perf.gate ~threshold:0.2 ~history ~current:slow_explore));
  (* First record of a new kind: nothing to gate against. *)
  let novel = record ~bench:"novel" [ (1, 1.0) ] in
  check_bool "unknown kind has empty baseline" true
    (Perf.gate ~threshold:0.2 ~history ~current:novel = [])

let test_report_json () =
  let baseline = record [ (1, 10.0) ] in
  let current = record [ (1, 2.0) ] in
  let verdicts = Perf.compare_records ~threshold:0.35 ~baseline ~current in
  let parsed =
    Json.parse (Json.to_string (Perf.report_to_json ~threshold:0.35 verdicts))
  in
  check_bool "regressed flag exported" true
    (Json.member "regressed" parsed = Some (Json.Bool true));
  match Option.bind (Json.member "verdicts" parsed) Json.get_list with
  | Some [ v ] ->
    check_bool "metric named" true
      (Option.bind (Json.member "metric" v) Json.get_string
      = Some "images_per_sec_d1");
    check_bool "ratio exported" true
      (match Option.bind (Json.member "ratio" v) Json.get_float with
      | Some r -> abs_float (r -. 0.2) < 1e-9
      | None -> false)
  | _ -> Alcotest.fail "expected one verdict"

let test_threshold_from_env () =
  let set v = Unix.putenv Perf.threshold_env_var v in
  let original = Sys.getenv_opt Perf.threshold_env_var in
  Fun.protect
    ~finally:(fun () ->
      set (match original with Some v -> v | None -> ""))
    (fun () ->
      set "0.1";
      check_bool "positive override" true (Perf.threshold_from_env () = 0.1);
      set "-3";
      check_bool "negative rejected" true
        (Perf.threshold_from_env () = Perf.default_threshold);
      set "wat";
      check_bool "garbage rejected" true
        (Perf.threshold_from_env () = Perf.default_threshold))

let () =
  Alcotest.run "tfapprox_perf"
    [
      ( "records",
        [
          Alcotest.test_case "of_json" `Quick test_record_of_json;
          Alcotest.test_case "json round trip" `Quick
            test_record_json_round_trip;
          Alcotest.test_case "utc label" `Quick test_utc_label_shape;
        ] );
      ( "history",
        [
          Alcotest.test_case "round trip and corruption" `Quick
            test_history_round_trip_and_corruption;
        ] );
      ( "gate",
        [
          Alcotest.test_case "verdict directions" `Quick
            test_compare_records_directions;
          Alcotest.test_case "best of history" `Quick test_best_of_history;
          Alcotest.test_case "gate against history" `Quick
            test_gate_against_history;
          Alcotest.test_case "bench partition" `Quick
            test_gate_partitions_by_bench;
          Alcotest.test_case "report json" `Quick test_report_json;
          Alcotest.test_case "threshold from env" `Quick
            test_threshold_from_env;
        ] );
    ]
