test/test_lenet_mnist.mli:
