examples/netlist_export.mli:
