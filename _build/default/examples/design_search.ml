(* Automated approximate-multiplier design (the Sec. V vision): search
   the partial-product pruning space, keep the error/area Pareto front,
   formally verify a finalist's netlist, and evaluate it end-to-end
   inside the DNN emulator — candidate circuit to network-level accuracy
   in one run, no hardware in the loop.

   Run with: dune exec examples/design_search.exe *)

module Search = Ax_arith.Search
module Metrics = Ax_arith.Error_metrics
module Lut = Ax_arith.Lut
module S = Ax_arith.Signedness
module Bdd = Ax_netlist.Bdd
module Multipliers = Ax_netlist.Multipliers
module Emulator = Tfapprox.Emulator
module Resnet = Ax_models.Resnet
module Cifar = Ax_data.Cifar

let () =
  (* 1. Greedy design-space walk: drop the cheapest partial product at
     each step, tracking the exact error profile. *)
  Format.printf "1. greedy pruning trajectory (64 -> fewer partial products)@.";
  let trajectory = Search.greedy_prune ~max_mae:900. () in
  Format.printf "   %-8s %10s %8s %10s@." "kept" "MAE" "WCE" "area proxy";
  List.iteri
    (fun i c ->
      if i mod 4 = 0 || i = List.length trajectory - 1 then
        Format.printf "   %-8d %10.2f %8d %10.0f@." c.Search.kept
          c.Search.metrics.Metrics.mae c.Search.metrics.Metrics.wce
          c.Search.area_proxy)
    trajectory;

  (* 2. Against the classic hand design: truncation at matched size. *)
  Format.printf "@.2. greedy vs plain truncation at equal size:@.";
  List.iter
    (fun cut ->
      let trunc = Search.evaluate (Search.truncation_mask ~cut) in
      match
        List.find_opt
          (fun c -> c.Search.kept = trunc.Search.kept)
          trajectory
      with
      | Some greedy ->
        Format.printf
          "   %d products: greedy MAE %.2f vs truncation MAE %.2f@."
          trunc.Search.kept greedy.Search.metrics.Metrics.mae
          trunc.Search.metrics.Metrics.mae
      | None -> ())
    [ 4; 6; 8 ];

  (* 3. Pick a mid-trajectory finalist; verify its gate-level netlist
     formally against an independently constructed reference. *)
  let finalist =
    List.nth trajectory (List.length trajectory / 2)
  in
  Format.printf "@.3. finalist: %d products kept, MAE %.2f@."
    finalist.Search.kept finalist.Search.metrics.Metrics.mae;
  let netlist = Search.netlist_of finalist in
  let mask = finalist.Search.mask in
  let reference =
    Multipliers.pruned ~bits:8
      ~keep:(fun i j -> mask.((i * 8) + j))
      ~name:"reference"
  in
  Format.printf "   BDD equivalence vs independent construction: %b@."
    (Bdd.equivalent netlist.Multipliers.circuit
       reference.Multipliers.circuit);
  let hw = Search.hardware_of finalist in
  let exact_hw =
    Ax_netlist.Power.analyze
      (Multipliers.unsigned_array ~bits:8).Multipliers.circuit
  in
  Format.printf "   gate-level: %a@." Ax_netlist.Power.pp_report hw;
  Format.printf "   (exact:     %a)@." Ax_netlist.Power.pp_report exact_hw;

  (* 4. Drop the finalist into the emulator: sign-magnitude LUT,
     ResNet-8, classification fidelity. *)
  let multiply =
    Ax_arith.Exact.signed_of_unsigned (Search.multiply_of_mask mask)
  in
  let lut = Lut.make ~signedness:S.Signed multiply in
  let graph = Resnet.build ~depth:8 () in
  let dataset = Cifar.generate ~n:30 () in
  let reference_preds =
    Emulator.predictions graph ~backend:Emulator.Cpu_accurate
      dataset.Cifar.images
  in
  let approx = Emulator.approximate_model ~lut graph in
  let preds =
    Emulator.predictions approx ~backend:Emulator.Cpu_gemm dataset.Cifar.images
  in
  Format.printf
    "@.4. end-to-end on ResNet-8: classification fidelity %.1f%% (area -%.0f%%)@."
    (100. *. Emulator.agreement reference_preds preds)
    (100. *. (1. -. (hw.Ax_netlist.Power.area /. exact_hw.Ax_netlist.Power.area)))
