(** Graph executor.

    Values flow through nodes in topological order; tensor- and
    scalar-valued results share the {!value} type.  The executor is the
    CPU backend of the emulator: [Conv2d] runs the float GEMM path,
    [Ax_conv2d] runs {!Axconv.conv} (or {!Conv_direct.conv} when the
    [`Cpu_direct] strategy is selected, reproducing the baseline of
    ref. [12]). *)

type value = Tensor of Ax_tensor.Tensor.t | Scalar of float

type strategy =
  | Cpu_gemm    (** im2col + LUT GEMM (Algorithm 1 on the CPU) *)
  | Cpu_direct  (** nested-loop baseline *)

val run :
  ?profile:Profile.t ->
  ?strategy:strategy ->
  ?scratch:Scratch.t ->
  ?tap:(Graph.node -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t) ->
  Graph.t ->
  input:Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t
(** Evaluate the graph on one input batch and return the output node's
    tensor.  Raises [Invalid_argument] when the output is scalar-valued
    or an op receives a value of the wrong kind.

    [scratch] is the buffer arena the convolution hot paths draw their
    chunk working buffers from (default: the calling domain's arena) —
    reused across layers and across calls, so repeated batches run
    allocation-free in steady state.

    [tap] is applied to every tensor-valued node output before its
    consumers read it; the returned tensor replaces the node's value.
    An identity tap is behaviour-neutral (bit-identical run); a
    rewriting tap models faults in inter-layer activation memory
    ({!Ax_resilience}) — downstream nodes, including the Min/Max range
    nodes of transformed graphs, see the corrupted values exactly as
    approximate hardware would. *)

val run_value :
  ?profile:Profile.t ->
  ?strategy:strategy ->
  ?scratch:Scratch.t ->
  ?tap:(Graph.node -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t) ->
  Graph.t ->
  input:Ax_tensor.Tensor.t ->
  value

val run_all :
  ?profile:Profile.t ->
  ?strategy:strategy ->
  ?scratch:Scratch.t ->
  ?tap:(Graph.node -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t) ->
  Graph.t ->
  input:Ax_tensor.Tensor.t ->
  value array
(** Evaluate the whole graph and return every node's value, indexed by
    node id — the hook calibration and debugging tools use to observe
    intermediate activations. *)

val output_shape :
  Graph.t -> input:Ax_tensor.Shape.t -> Ax_tensor.Shape.t
(** The shape {!run} would return for a batch of the given input shape,
    computed without running any arithmetic — the same per-op rules the
    executor realises.  This is how {!Ax_core.Emulator} shapes the
    output of an empty (zero-image) batch.  Raises [Invalid_argument]
    if the graph output is scalar-valued or an op's input is not a
    tensor. *)
