lib/nn/profile.ml: Format Fun Unix
