module Lut = Ax_arith.Lut
module Graph = Ax_nn.Graph
module Filter = Ax_nn.Filter
module Axconv = Ax_nn.Axconv
module Matrix = Ax_tensor.Matrix
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape

type kind = Bit_flip | Stuck_at of bool

type site =
  | Lut_entry of { index : int; bit : int }
  | Weight of { node : string; index : int; bit : int }
  | Activation of { node : string; index : int; bit : int }

type t = { site : site; kind : kind }

let kind_name = function
  | Bit_flip -> "bit-flip"
  | Stuck_at true -> "stuck-at-1"
  | Stuck_at false -> "stuck-at-0"

let pp_site ppf = function
  | Lut_entry { index; bit } ->
    Format.fprintf ppf "lut[%d].b%d" index bit
  | Weight { node; index; bit } ->
    Format.fprintf ppf "weight[%s:%d].b%d" node index bit
  | Activation { node; index; bit } ->
    Format.fprintf ppf "act[%s:%d].b%d" node index bit

let pp ppf f = Format.fprintf ppf "%s@%a" (kind_name f.kind) pp_site f.site

(* SplitMix64 finaliser on Int64 (OCaml's native int is 63-bit, so the
   64-bit multiplies must go through Int64).  Every fault site is a pure
   function of (seed, salts) through this mix — no hidden RNG state, so
   campaigns replay bit-identically regardless of evaluation order. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let golden = 0x9E3779B97F4A7C15L

let hash ~seed salts =
  let step h s = mix64 (Int64.add (Int64.logxor h (Int64.of_int s)) golden) in
  let h = List.fold_left step (step golden seed) salts in
  (* top bits of the mix have the best avalanche; keep 62 so the result
     is a non-negative OCaml int on 64-bit platforms *)
  Int64.to_int (Int64.shift_right_logical h 2)

let uniform ~seed salts n =
  if n <= 0 then invalid_arg "Fault.uniform: empty range";
  hash ~seed salts mod n

let bernoulli ~seed salts rate =
  if rate < 0. || rate > 1. then invalid_arg "Fault.bernoulli: rate";
  let bits = hash ~seed salts land ((1 lsl 30) - 1) in
  float_of_int bits /. float_of_int (1 lsl 30) < rate

let apply_int kind ~bit v =
  let mask = 1 lsl bit in
  match kind with
  | Bit_flip -> v lxor mask
  | Stuck_at true -> v lor mask
  | Stuck_at false -> v land lnot mask

let apply_float32 kind ~bit f =
  if bit < 0 || bit > 31 then invalid_arg "Fault.apply_float32: bit";
  let bits = Int32.bits_of_float f in
  let mask = Int32.shift_left 1l bit in
  let bits =
    match kind with
    | Bit_flip -> Int32.logxor bits mask
    | Stuck_at true -> Int32.logor bits mask
    | Stuck_at false -> Int32.logand bits (Int32.lognot mask)
  in
  Int32.float_of_bits bits

(* {1 LUT (texture memory) faults} *)

let corrupt_lut lut faults =
  let c = Lut.copy lut in
  List.iter
    (fun f ->
      match f.site with
      | Lut_entry { index; bit } ->
        if bit < 0 || bit > 15 then
          invalid_arg
            (Printf.sprintf "Fault.corrupt_lut: bit %d outside 0..15" bit);
        Lut.set_raw c index (apply_int f.kind ~bit (Lut.get_raw c index))
      | Weight _ | Activation _ -> ())
    faults;
  c

let random_lut_sites ~seed ~count =
  List.init count (fun i ->
      Lut_entry
        {
          index = uniform ~seed [ i; 0 ] Lut.entries;
          bit = uniform ~seed [ i; 1 ] 16;
        })

let random_flip ~seed ~rate lut =
  let c = Lut.copy lut in
  for index = 0 to Lut.entries - 1 do
    let v = ref (Lut.get_raw c index) in
    for bit = 0 to 15 do
      if bernoulli ~seed [ index; bit ] rate then
        v := apply_int Bit_flip ~bit !v
    done;
    Lut.set_raw c index !v
  done;
  c

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v

let flip_count a b =
  let n = ref 0 in
  for index = 0 to Lut.entries - 1 do
    n := !n + popcount (Lut.get_raw a index lxor Lut.get_raw b index)
  done;
  !n

(* {1 Weight (parameter memory) faults} *)

let weight_count op =
  match op with
  | Graph.Conv2d { filter; _ }
  | Graph.Ax_conv2d { filter; _ }
  | Graph.Depthwise_conv2d { filter; _ }
  | Graph.Ax_depthwise_conv2d { filter; _ } ->
    Some (Filter.num_weights filter)
  | Graph.Dense { weights; _ } ->
    Some (weights.Matrix.rows * weights.Matrix.cols)
  | Graph.Input | Graph.Const_scalar _ | Graph.Min_reduce | Graph.Max_reduce
  | Graph.Relu | Graph.Max_pool _ | Graph.Global_avg_pool | Graph.Batch_norm _
  | Graph.Add | Graph.Softmax | Graph.Shortcut_pad _ ->
    None

let corrupt_array data faults =
  (* [data] is already a private copy of the caller's *)
  List.iter
    (fun (index, bit, kind) ->
      if index < 0 || index >= Array.length data then
        invalid_arg
          (Printf.sprintf "Fault.corrupt_graph: weight index %d outside [0, %d)"
             index (Array.length data));
      data.(index) <- apply_float32 kind ~bit data.(index))
    faults

let corrupt_filter filter faults =
  let data = Filter.to_array filter in
  corrupt_array data faults;
  Filter.of_array ~kh:(Filter.kh filter) ~kw:(Filter.kw filter)
    ~in_c:(Filter.in_c filter) ~out_c:(Filter.out_c filter) data

let corrupt_matrix (m : Matrix.t) faults =
  let data = Array.copy m.Matrix.data in
  corrupt_array data faults;
  { m with Matrix.data }

let corrupt_graph g faults =
  let by_node =
    List.filter_map
      (fun f ->
        match f.site with
        | Weight { node; index; bit } -> Some (node, (index, bit, f.kind))
        | Lut_entry _ | Activation _ -> None)
      faults
  in
  if by_node = [] then g
  else begin
    let hit = Hashtbl.create 8 in
    let g =
      Graph.map_ops
        (fun n ->
          let mine =
            List.filter_map
              (fun (node, f) -> if node = n.Graph.name then Some f else None)
              by_node
          in
          if mine = [] then n.Graph.op
          else begin
            Hashtbl.replace hit n.Graph.name ();
            match n.Graph.op with
            | Graph.Conv2d { filter; bias; spec } ->
              Graph.Conv2d { filter = corrupt_filter filter mine; bias; spec }
            | Graph.Ax_conv2d { filter; bias; spec; config } ->
              Graph.Ax_conv2d
                { filter = corrupt_filter filter mine; bias; spec; config }
            | Graph.Depthwise_conv2d { filter; bias; spec } ->
              Graph.Depthwise_conv2d
                { filter = corrupt_filter filter mine; bias; spec }
            | Graph.Ax_depthwise_conv2d { filter; bias; spec; config } ->
              Graph.Ax_depthwise_conv2d
                { filter = corrupt_filter filter mine; bias; spec; config }
            | Graph.Dense { weights; bias } ->
              Graph.Dense { weights = corrupt_matrix weights mine; bias }
            | ( Graph.Input | Graph.Const_scalar _ | Graph.Min_reduce
              | Graph.Max_reduce | Graph.Relu | Graph.Max_pool _
              | Graph.Global_avg_pool | Graph.Batch_norm _ | Graph.Add
              | Graph.Softmax | Graph.Shortcut_pad _ ) as op ->
              ignore op;
              invalid_arg
                (Printf.sprintf
                   "Fault.corrupt_graph: node %s has no weight memory"
                   n.Graph.name)
          end)
        g
    in
    List.iter
      (fun (node, _) ->
        if not (Hashtbl.mem hit node) then
          invalid_arg
            (Printf.sprintf "Fault.corrupt_graph: unknown node %s" node))
      by_node;
    g
  end

let random_weight_sites ~seed ~count ~bit g =
  let nodes =
    Array.to_list (Graph.nodes g)
    |> List.filter_map (fun n ->
           match weight_count n.Graph.op with
           | Some w when w > 0 -> Some (n.Graph.name, w)
           | Some _ | None -> None)
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 nodes in
  if total = 0 then
    invalid_arg "Fault.random_weight_sites: graph has no weights";
  List.init count (fun i ->
      let r = uniform ~seed [ i; 2 ] total in
      let rec locate r = function
        | [] -> assert false
        | (node, w) :: rest ->
          if r < w then Weight { node; index = r; bit } else locate (r - w) rest
      in
      locate r nodes)

(* {1 Activation (inter-layer buffer) faults} *)

let tap faults =
  let acts =
    List.filter_map
      (fun f ->
        match f.site with
        | Activation { node; index; bit } -> Some (node, index, bit, f.kind)
        | Lut_entry _ | Weight _ -> None)
      faults
  in
  fun (n : Graph.node) tensor ->
    let mine =
      List.filter_map
        (fun (node, index, bit, kind) ->
          if node = n.Graph.name then Some (index, bit, kind) else None)
        acts
    in
    if mine = [] then tensor
    else begin
      let t = Tensor.copy tensor in
      let shape = Tensor.shape t in
      let per_image = Shape.(shape.h * shape.w * shape.c) in
      List.iter
        (fun (index, bit, kind) ->
          (* a persistent faulty cell in the activation buffer: the same
             per-image offset is hit for every image that flows through,
             whether the batch arrives whole or as per-image shards *)
          let off = index mod per_image in
          for img = 0 to Shape.(shape.n) - 1 do
            let idx = (img * per_image) + off in
            Tensor.set_flat t idx (apply_float32 kind ~bit (Tensor.get_flat t idx))
          done)
        mine;
      t
    end

let random_activation_sites ~seed ~count ~bit g =
  let nodes =
    Array.to_list (Graph.nodes g)
    |> List.filter_map (fun n ->
           match n.Graph.op with
           | Graph.Input | Graph.Const_scalar _ | Graph.Min_reduce
           | Graph.Max_reduce ->
             None
           | Graph.Conv2d _ | Graph.Ax_conv2d _ | Graph.Depthwise_conv2d _
           | Graph.Ax_depthwise_conv2d _ | Graph.Relu | Graph.Max_pool _
           | Graph.Global_avg_pool | Graph.Dense _ | Graph.Batch_norm _
           | Graph.Add | Graph.Softmax | Graph.Shortcut_pad _ ->
             Some n.Graph.name)
  in
  let n_nodes = List.length nodes in
  if n_nodes = 0 then
    invalid_arg "Fault.random_activation_sites: graph has no activations";
  List.init count (fun i ->
      let node = List.nth nodes (uniform ~seed [ i; 3 ] n_nodes) in
      Activation { node; index = uniform ~seed [ i; 4 ] (1 lsl 20); bit })
