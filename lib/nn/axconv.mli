(** AxConv2D — the approximate 2D convolution of Algorithm 1.

    Functionally: both inputs are quantized with independent affine
    coefficients derived from the supplied ranges (the four extra scalar
    inputs of the paper's layer), every 8-bit product is resolved
    through the multiplier LUT, products accumulate into a wide
    accumulator, and the result is dequantized with the Eq. 4 correction
    terms — so the output is a float tensor with the same range
    semantics as the accurate layer.

    Structurally: the batch is split into fixed-size chunks (decoupling
    memory use from batch size), each chunk is lowered to a quantized
    patch matrix [Mp] with per-patch sums [Sp], and multiplied against
    the quantized filter matrix with per-filter sums [Sf] — the exact
    CPU-side mirror of the CUDA kernels. *)

type granularity =
  | Per_tensor
      (** one (alpha2, beta2) pair for the whole filter bank, derived
          from the supplied filter range — the paper's formulation *)
  | Per_channel
      (** one pair per output channel, derived from each filter's own
          weight range clipped to the supplied filter range (TF-style
          per-channel weight quantization under the layer's range
          contract); channels with unusable bounds — NaN or infinite
          weights — fall back to the supplied range, so every
          coefficient is finite.  Eq. 4 factors out per channel, so the
          correction algebra is unchanged. *)

type config = {
  lut : Ax_arith.Lut.t;
  round_mode : Ax_quant.Round.t;
  chunk_size : int;  (** images per chunk; Algorithm 1's chunking knob *)
  granularity : granularity;
  accumulator : Accumulator.t;
  domains : int;
      (** CPU parallelism for the Im2Cols and ApproxGEMM loops (the
          paper's CPU baselines ran on a multicore Xeon).  Work runs on
          the persistent {!Ax_pool.Pool} — the process-wide default
          unless {!conv} is handed one — and each patch/output row is
          computed entirely by one domain, so results are bit-identical
          for any value. *)
  compress : bool;
      (** Read the multiplier through its {!Ax_quant.Lut_compressed}
          encoding when one fits the 16 kB cache budget (the CPU
          analogue of the paper's texture-cache binding).  Encodings are
          exhaustively verified equal to the raw table at construction,
          so this flag cannot change any output bit — only which decode
          loop runs.  Off by default: the tiled kernel reads the raw
          table one load per MAC with strong row locality, which beats
          every compressed decode when the table is cache-warm (see
          EXPERIMENTS.md, GEMM hot path); enable it on hosts or
          workloads where the 128 kB table demonstrably thrashes the
          cache. *)
}

val default_chunk_size : int
(** 250 images, the memory/parallelism compromise used as default. *)

val make_config :
  ?round_mode:Ax_quant.Round.t ->
  ?chunk_size:int ->
  ?granularity:granularity ->
  ?accumulator:Accumulator.t ->
  ?domains:int ->
  ?compress:bool ->
  Ax_arith.Lut.t ->
  config
(** Defaults: nearest-even rounding, chunk 250, per-tensor, wide
    accumulator, single domain, compression off (raw table). *)

val conv :
  ?profile:Profile.t ->
  ?pool:Ax_pool.Pool.t ->
  ?scratch:Scratch.t ->
  config:config ->
  input:Ax_tensor.Tensor.t ->
  input_range:Ax_quant.Range.t ->
  filter:Filter.t ->
  filter_range:Ax_quant.Range.t ->
  ?bias:float array ->
  spec:Conv_spec.t ->
  unit ->
  Ax_tensor.Tensor.t
(** Raises [Invalid_argument] on shape/bias mismatches.  When [profile]
    is given, wall-clock time is attributed to Fig. 2 phases
    (coefficient computation and quantization passes to [Quantization],
    the LUT-accumulate inner loop to [Lut], output assembly to [Other]),
    LUT lookups / MACs / chunks are counted once per chunk on the
    coordinating domain, and pool utilization gauges are published.
    When [config.domains > 1] the Im2Cols and GEMM row loops run on
    [pool] (default: the grown process-wide pool,
    {!Ax_pool.Pool.ensure}); all counters and results are bit-identical
    to the single-domain run.

    Chunk working buffers live in [scratch] (default: the calling
    domain's arena, {!Scratch.domain_local}), and the GEMM accumulator
    tile in the executing domain's own arena — so once the arenas have
    grown to the layer's chunk geometry, steady-state chunks allocate
    nothing (the CI [bench -- gemm] gate holds this at under 512 words
    per chunk).  Rounding with the deterministic modes is likewise
    allocation-free; [Stochastic] rounding boxes one float per tap. *)

val filter_coeffs :
  granularity ->
  Ax_arith.Signedness.t ->
  Filter.t ->
  Ax_quant.Range.t ->
  Ax_quant.Quantization.coeffs array
(** The per-output-channel quantization coefficients the convolution
    uses ([out_c] entries; all equal under [Per_tensor]). *)

val quantize_filters :
  Ax_arith.Signedness.t ->
  Ax_quant.Quantization.coeffs ->
  Ax_quant.Round.t ->
  Filter.t ->
  Bytes.t * int array
(** [(mf_t, sf)]: filter codes transposed to filter-major layout
    ([out_c] rows of [taps] codes, so the GEMM inner loop streams
    contiguously) and the per-filter sums of quantized values ([Sf] of
    Algorithm 1, Eq. 4's third sum) — per-tensor coefficients.  Exposed
    for the GPU cost model and for tests. *)

val quantize_filters_per_channel :
  Ax_arith.Signedness.t ->
  Ax_quant.Quantization.coeffs array ->
  Ax_quant.Round.t ->
  Filter.t ->
  Bytes.t * int array
(** Generalisation of {!quantize_filters} with one coefficient pair per
    output channel ([out_c] entries). *)
