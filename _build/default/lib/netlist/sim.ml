let eval c ins =
  let expected = Circuit.input_count c in
  if Array.length ins <> expected then
    invalid_arg
      (Printf.sprintf "Sim.eval: %d inputs given, circuit has %d"
         (Array.length ins) expected);
  let values = Array.make (Circuit.node_count c) false in
  let next_input = ref 0 in
  Circuit.iter_gates c (fun i g ->
      match g with
      | Gate.Input _ ->
        values.(i) <- ins.(!next_input);
        incr next_input
      | g -> values.(i) <- Gate.eval g (fun j -> values.(j)));
  let outs = Circuit.outputs c in
  Array.of_list (List.map (fun (_, s) -> values.(Circuit.index s)) outs)

let eval_words c ins =
  let expected = Circuit.input_count c in
  if Array.length ins <> expected then
    invalid_arg
      (Printf.sprintf "Sim.eval_words: %d inputs given, circuit has %d"
         (Array.length ins) expected);
  let values = Array.make (Circuit.node_count c) 0L in
  let next_input = ref 0 in
  Circuit.iter_gates c (fun i g ->
      match g with
      | Gate.Input _ ->
        values.(i) <- ins.(!next_input);
        incr next_input
      | g -> values.(i) <- Gate.eval_word g (fun j -> values.(j)));
  let outs = Circuit.outputs c in
  Array.of_list (List.map (fun (_, s) -> values.(Circuit.index s)) outs)

let eval_unsigned c ~input_bits x =
  let total = List.fold_left ( + ) 0 input_bits in
  if total <> Circuit.input_count c then
    invalid_arg "Sim.eval_unsigned: input_bits do not cover the inputs";
  let ins = Array.make total false in
  for bit = 0 to total - 1 do
    ins.(bit) <- (x lsr bit) land 1 = 1
  done;
  let outs = eval c ins in
  let acc = ref 0 in
  Array.iteri (fun bit b -> if b then acc := !acc lor (1 lsl bit)) outs;
  !acc

(* Exhaustive bit-parallel sweep: pack 64 consecutive patterns per word.
   Pattern p = b * 2^wa + a; lane k of sweep s holds pattern s*64 + k. *)
let truth_table_2x c ~width_a ~width_b =
  if width_a + width_b <> Circuit.input_count c then
    invalid_arg "Sim.truth_table_2x: widths do not match circuit inputs";
  let patterns = 1 lsl (width_a + width_b) in
  let sweeps = (patterns + 63) / 64 in
  let table = Array.make patterns 0 in
  let words = Array.make (width_a + width_b) 0L in
  for s = 0 to sweeps - 1 do
    let base = s * 64 in
    for bit = 0 to width_a + width_b - 1 do
      let w = ref 0L in
      for lane = 0 to 63 do
        let p = base + lane in
        if p < patterns && (p lsr bit) land 1 = 1 then
          w := Int64.logor !w (Int64.shift_left 1L lane)
      done;
      words.(bit) <- !w
    done;
    let outs = eval_words c words in
    for lane = 0 to 63 do
      let p = base + lane in
      if p < patterns then begin
        let v = ref 0 in
        Array.iteri
          (fun bit w ->
            if Int64.logand (Int64.shift_right_logical w lane) 1L = 1L then
              v := !v lor (1 lsl bit))
          outs;
        table.(p) <- !v
      end
    done
  done;
  fun a b ->
    if a < 0 || a >= 1 lsl width_a then
      invalid_arg "Sim.truth_table_2x: operand a out of range";
    if b < 0 || b >= 1 lsl width_b then
      invalid_arg "Sim.truth_table_2x: operand b out of range";
    table.((b lsl width_a) lor a)
