(** Cache-resident compressed form of an approximate-multiplier LUT.

    The paper's accelerator keeps the full 128 kB truth table fast by
    fetching it through the GPU texture cache (Sec. III); the CPU
    emulator's analogue is shrinking the table until it fits in L1/L2.
    Because catalogued approximate multipliers are structured errors on
    an exact product, the per-entry {e delta}

    {[ delta(ca, cb) = lut(ca, cb) - value(ca) * value(cb) ]}

    is highly compressible: partial-product truncation makes it a
    bilinear form of a few operand bits, near-exact designs make it
    sparse.  {!of_lut} tries a lattice of encodings cheapest-first and
    {b verifies each candidate exhaustively over all 65,536 entries} —
    compression never changes a single entry, a contract the
    differential suite [test_lut_compressed.ml] pins down per registry
    multiplier.  When no encoding fits the {!budget_bytes} working-set
    budget the raw table is used and reported honestly. *)

type t

type mode =
  | Exact_product  (** delta is identically zero (exact + certified
                       netlist-exact multipliers); 0 bytes *)
  | Masked of int  (** raw entry = exact raw entry [land] mask; 2 bytes *)
  | Low_factored of { ka : int; kb : int }
      (** delta depends only on [(ca mod 2^ka, cb mod 2^kb)] — e.g.
          partial products below [2^cut] dropped ⇒ [ka = kb = cut];
          one [2^(ka+kb)]-entry int16 table *)
  | Split_factored of { s : int }
      (** [delta(a,b) = D1[a][b mod 2^s] + D2[a mod 2^(8-s)][b / 2^s]]
          — truncation/broken-array deltas whose high-[b] terms only
          reach low [a] bits; [2(256*2^s + 4^(8-s))] bytes *)
  | Nibble_split
      (** [delta(a,b) = HI[a / 16][b] + LO[a mod 16][b]] — exact for
          {e any} bilinear partial-product delta; 16 kB, the budget
          boundary (catches [trunc10], which the narrower modes miss) *)
  | Sparse of { sym : bool; nnz : int }
      (** zero-delta bitmap + per-32-entry rank bases + packed int16
          corrections; [sym] halves storage to rows [ca <= 128] when
          delta is invariant under negating both operand codes *)
  | Raw  (** no encoding paid; the original 128 kB table *)

val of_lut : Ax_arith.Lut.t -> t
(** Compress (memoised by physical table identity — [Registry.lut]
    already hands out one table per multiplier, so configs sharing a
    multiplier share one compression; bounded cache, thread-safe). *)

val lut : t -> Ax_arith.Lut.t
val mode : t -> mode

val mode_name : t -> string
(** Short stable label for benchmarks/JSON: ["exact"], ["masked"],
    ["low-factored"], ["split-factored"], ["nibble-split"], ["sparse"],
    ["raw"]. *)

val bytes : t -> int
(** Working-set payload of the encoding in bytes ([Ax_arith.Lut.size_bytes] for
    {!Raw}, 0 for {!Exact_product}). *)

val ratio : t -> float
(** [Ax_arith.Lut.size_bytes / max 1 (bytes t)] — the compression factor. *)

val budget_bytes : int
(** [16384]: encodings larger than this lose to {!Raw} — past 16 kB the
    table no longer fits alongside the GEMM tiles in L1/L2 and
    compression stops paying. *)

val lookup_code : t -> int -> int -> int
(** Decoded product by operand bit patterns; bit-identical to
    [Ax_arith.Lut.lookup_code (lut t)] for every code pair — the exhaustive
    equivalence the test suite asserts.  Generic (one branch per mode);
    kernels that need per-MAC speed should match {!view} once and
    specialise. *)

(** {1 Kernel-facing representation}

    The tiled GEMM kernel hoists the arrays out of its inner loop and
    specialises per mode; treat all arrays as read-only. *)

type table16 =
  (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t

type bytes8 =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type index16 =
  (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type view =
  | Exact_view  (** product = [va * vb] *)
  | Masked_view of { mask : int; decode_correction : int }
      (** raw = [(va * vb) land mask]; decode with
          [raw - (raw lsr 15) * decode_correction] *)
  | Low_view of { shift : int; amask : int; bmask : int; tbl : table16 }
      (** delta = [tbl.{((ca land amask) lsl shift) lor (cb land bmask)}] *)
  | Split_view of {
      s : int;
      low_mask : int;
      high_mask : int;
      high_shift : int;
      d1 : table16;
      d2 : table16;
    }
      (** delta = [d1.{(ca lsl s) lor (cb land low_mask)}
                   + d2.{((ca land high_mask) lsl high_shift)
                         lor (cb lsr s)}] *)
  | Nibble_view of { hi : table16; lo : table16 }
      (** delta = [hi.{((ca lsr 4) lsl 8) lor cb}
                   + lo.{((ca land 15) lsl 8) lor cb}] *)
  | Sparse_view of {
      sym : bool;
      bitmap : bytes8;
      bases : index16;
      pop : bytes8;
      corr : table16;
    }
      (** see {!sparse_delta} for the reference decode *)
  | Raw_view of
      (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
      (** the original table ([Ax_arith.Lut.table]) *)

val view : t -> view

val values : t -> int array
(** 256-entry code→value table for the LUT's signedness, shared by every
    mode's [va * vb] base term. *)

val sparse_delta :
  sym:bool ->
  bitmap:bytes8 ->
  bases:index16 ->
  pop:bytes8 ->
  corr:table16 ->
  int ->
  int ->
  int
(** Reference sparse decode: symmetry remap, one bitmap byte probe (zero
    delta exits with a single load — the common case for near-exact
    multipliers), rank = per-32-entry base + byte popcounts on hit. *)
