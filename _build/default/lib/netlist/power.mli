(** Unit-gate hardware cost model.

    Area is reported in transistor-count equivalents of standard static
    CMOS cells, delay as a unit-delay critical path weighted by per-gate
    logical effort, and dynamic power as the sum over gates of switching
    activity times input capacitance, under the standard zero-delay /
    spatial-independence signal-probability model with uniform random
    primary inputs.  These are relative figures of merit for comparing
    approximate-circuit candidates, not absolute silicon numbers — which
    is also how the approximate-computing literature uses them. *)

type report = {
  area : float;       (** transistor-equivalent area *)
  delay : float;      (** critical path, unit-delay-per-effort *)
  power : float;      (** relative dynamic (switching) power *)
  gates : int;        (** combinational gate count *)
  pdp : float;        (** power-delay product *)
}

val area_of_gate : Gate.t -> float
val delay_of_gate : Gate.t -> float

val signal_probabilities : Circuit.t -> float array
(** Probability of each node being logic-1 under independent uniform
    inputs (independence approximation at reconvergent fan-out). *)

val analyze : Circuit.t -> report

val pp_report : Format.formatter -> report -> unit
