lib/nn/layers.mli: Ax_tensor
