type buffer =
  (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { shape : Shape.t; data : buffer }

let create shape =
  let data =
    Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout
      (Shape.num_elements shape)
  in
  Bigarray.Array1.fill data 0.;
  { shape; data }

let shape t = t.shape
let num_elements t = Shape.num_elements t.shape
let buffer t = t.data
let get t ~n ~h ~w ~c = t.data.{Shape.offset t.shape ~n ~h ~w ~c}
let set t ~n ~h ~w ~c v = t.data.{Shape.offset t.shape ~n ~h ~w ~c} <- v
let get_flat t i = t.data.{i}
let set_flat t i v = t.data.{i} <- v
let fill t v = Bigarray.Array1.fill t.data v

let copy t =
  let fresh = create t.shape in
  Bigarray.Array1.blit t.data fresh.data;
  fresh

let of_array shape arr =
  if Array.length arr <> Shape.num_elements shape then
    invalid_arg
      (Printf.sprintf "Tensor.of_array: %d values for shape %s"
         (Array.length arr) (Shape.to_string shape));
  let t = create shape in
  Array.iteri (fun i v -> t.data.{i} <- v) arr;
  t

let to_array t = Array.init (num_elements t) (fun i -> t.data.{i})

let init shape f =
  let t = create shape in
  let open Shape in
  for n = 0 to shape.n - 1 do
    for h = 0 to shape.h - 1 do
      for w = 0 to shape.w - 1 do
        for c = 0 to shape.c - 1 do
          t.data.{unsafe_offset shape ~n ~h ~w ~c} <- f ~n ~h ~w ~c
        done
      done
    done
  done;
  t

let map_inplace f t =
  for i = 0 to num_elements t - 1 do
    t.data.{i} <- f t.data.{i}
  done

let map f t =
  let fresh = copy t in
  map_inplace f fresh;
  fresh

let iteri_flat f t =
  for i = 0 to num_elements t - 1 do
    f i t.data.{i}
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to num_elements t - 1 do
    acc := f !acc t.data.{i}
  done;
  !acc

let min_max t =
  if num_elements t = 0 then invalid_arg "Tensor.min_max: empty tensor";
  let mn = ref t.data.{0} and mx = ref t.data.{0} in
  for i = 1 to num_elements t - 1 do
    let v = t.data.{i} in
    if v < !mn then mn := v;
    if v > !mx then mx := v
  done;
  (!mn, !mx)

let add a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.add: shape mismatch";
  let out = create a.shape in
  for i = 0 to num_elements a - 1 do
    out.data.{i} <- a.data.{i} +. b.data.{i}
  done;
  out

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let worst = ref 0. in
  for i = 0 to num_elements a - 1 do
    let d = abs_float (a.data.{i} -. b.data.{i}) in
    if d > !worst then worst := d
  done;
  !worst

let approx_equal ?(tolerance = 1e-5) a b = max_abs_diff a b <= tolerance

let fill_gaussian ?(mean = 0.) ?(stddev = 1.) rng t =
  map_inplace (fun _ -> mean +. (stddev *. Rng.gaussian rng)) t

let fill_uniform ?(lo = 0.) ?(hi = 1.) rng t =
  map_inplace (fun _ -> lo +. ((hi -. lo) *. Rng.float rng)) t

let slice_batch t ~start ~count =
  let s = t.shape in
  if start < 0 || count <= 0 || start + count > s.Shape.n then
    invalid_arg "Tensor.slice_batch: range out of bounds";
  let per_image = s.Shape.h * s.Shape.w * s.Shape.c in
  let out =
    create (Shape.make ~n:count ~h:s.Shape.h ~w:s.Shape.w ~c:s.Shape.c)
  in
  let src = Bigarray.Array1.sub t.data (start * per_image) (count * per_image) in
  Bigarray.Array1.blit src out.data;
  out

let concat_batch pieces =
  match pieces with
  | [] -> invalid_arg "Tensor.concat_batch: empty list"
  | first :: _ ->
    let s = first.shape in
    let per_image = s.Shape.h * s.Shape.w * s.Shape.c in
    let total =
      List.fold_left
        (fun acc p ->
          let ps = p.shape in
          if
            ps.Shape.h <> s.Shape.h || ps.Shape.w <> s.Shape.w
            || ps.Shape.c <> s.Shape.c
          then invalid_arg "Tensor.concat_batch: inner shape mismatch";
          acc + ps.Shape.n)
        0 pieces
    in
    let out =
      create (Shape.make ~n:total ~h:s.Shape.h ~w:s.Shape.w ~c:s.Shape.c)
    in
    let cursor = ref 0 in
    List.iter
      (fun p ->
        let len = p.shape.Shape.n * per_image in
        let dst = Bigarray.Array1.sub out.data !cursor len in
        Bigarray.Array1.blit p.data dst;
        cursor := !cursor + len)
      pieces;
    out
