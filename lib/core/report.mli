(** Plain-text rendering of experiment results in the layout of the
    paper's tables and figures. *)

val print_table1 : Format.formatter -> Experiments.table1_row list -> unit
(** Table I: one row per DNN, times as "t_init + t_comp", overheads and
    GPU-vs-CPU speedups. *)

val print_fig2 : Format.formatter -> Experiments.fig2_row list -> unit
(** Fig. 2: per-configuration percentage bars for CPU and GPU. *)

val print_accuracy_sweep :
  Format.formatter -> Experiments.accuracy_row list -> unit

val seconds : float -> string
(** Human formatting: "0.42 s", "13.1 s", "3796 s". *)

val table1_csv : Experiments.table1_row list -> string
(** Machine-readable Table I (header + one line per DNN) for plotting
    scripts; times in seconds, speedups unitless. *)

val fig2_csv : Experiments.fig2_row list -> string
(** Machine-readable Fig. 2 percentages (one line per config and
    implementation). *)

val csv_table : header:string list -> string list list -> string
(** Generic CSV writer shared by report producers ({!Ax_resilience}
    campaign reports among them): header line plus one line per row,
    fields quoted per RFC 4180 only when they contain a comma, quote or
    newline — plain numeric output is byte-stable. *)
