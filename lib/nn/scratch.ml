(* Grow-only buffer arena for the convolution hot path.  Accessors hand
   out a buffer at least as large as requested and remember the largest
   demand, so the first (largest) chunk of a batch pays the allocation
   and every later chunk — and every later batch through the same arena
   — reuses it.  Buffers are handed out oversized: callers index by
   their own row/tap arithmetic and must not rely on length. *)

type t = {
  mutable mp : Bytes.t;        (* quantized patch matrix codes *)
  mutable sp : int array;      (* per-patch quantized-value sums *)
  mutable acc : int array;     (* GEMM accumulator tile *)
  mutable pf : Bytes.t;        (* tap-major packed filter codes *)
  mutable fm : float array;    (* float patch matrix (Im2col.to_matrix) *)
}

let create () =
  { mp = Bytes.empty; sp = [||]; acc = [||]; pf = Bytes.empty; fm = [||] }

let mp t n =
  if Bytes.length t.mp < n then t.mp <- Bytes.create n;
  t.mp

let sp t n =
  if Array.length t.sp < n then t.sp <- Array.make n 0;
  t.sp

let acc t n =
  if Array.length t.acc < n then t.acc <- Array.make n 0;
  t.acc

let pf t n =
  if Bytes.length t.pf < n then t.pf <- Bytes.create n;
  t.pf

let fm t n =
  if Array.length t.fm < n then t.fm <- Array.make n 0.;
  t.fm

(* One arena per domain: pool workers and the coordinator each get
   their own, so a parallel GEMM needs no per-worker threading of
   scratch state and two domains never share a buffer.  Within a
   domain execution is sequential and each buffer's lifetime is a
   single phase of a single conv call, so distinct fields never
   overlap in use. *)
let key = Domain.DLS.new_key create
let domain_local () = Domain.DLS.get key
