module D = Diagnostic

let graph ?input g =
  let structural = Graph_check.check ?input g in
  let quant, layers = Quant_check.check g in
  (structural @ quant, layers)

let multiplier = Netlist_check.check_multiplier

let registry_entry (e : Ax_arith.Registry.entry) =
  let lut = Ax_arith.Registry.lut e in
  let table =
    Quant_check.check_lut ~location:(D.Artefact e.Ax_arith.Registry.name) lut
  in
  match e.Ax_arith.Registry.netlist with
  | None -> table
  | Some make -> table @ Netlist_check.check_multiplier ~lut (make ())

let enabled () = Sys.getenv_opt "TFAPPROX_NO_CHECK" = None

(* Pre-flight cache: physical identity of verified graphs.  Bounded so
   long sweeps over many freshly built graphs cannot leak; re-verifying
   after an eviction is only a performance cost. *)
let max_cached = 16
let verified : Ax_nn.Graph.t list ref = ref []

let assert_runnable ?input g =
  if enabled () && not (List.memq g !verified) then begin
    let findings, _ = graph ?input g in
    (match D.errors findings with
    | [] -> ()
    | errors -> raise (D.Rejected errors));
    verified :=
      g
      ::
      (if List.length !verified >= max_cached then
         List.filteri (fun i _ -> i < max_cached - 1) !verified
       else !verified)
  end
