lib/tensor/rng.mli:
