module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Range = Ax_quant.Range

type value = Tensor of Tensor.t | Scalar of float
type strategy = Cpu_gemm | Cpu_direct

let tensor_of = function
  | Tensor t -> t
  | Scalar _ -> invalid_arg "Exec: expected a tensor value"

let scalar_of = function
  | Scalar s -> s
  | Tensor _ -> invalid_arg "Exec: expected a scalar value"

let strategy_name = function Cpu_gemm -> "cpu-gemm" | Cpu_direct -> "cpu-direct"

let run_all ?profile ?(strategy = Cpu_gemm) ?scratch ?tap g ~input =
  let values : value option array = Array.make (Graph.size g) None in
  let value_of id =
    match values.(id) with
    | Some v -> v
    | None -> invalid_arg "Exec: node evaluated before its input"
  in
  let charge phase f =
    match profile with Some p -> Profile.time p phase f | None -> f ()
  in
  let span name attrs f =
    match profile with
    | Some p -> Profile.span p ~name ~attrs f
    | None -> f ()
  in
  span "exec.run_all"
    [
      ("nodes", string_of_int (Graph.size g));
      ("strategy", strategy_name strategy);
      ("batch", string_of_int Ax_tensor.Shape.((Tensor.shape input).n));
    ]
  @@ fun () ->
  Array.iter
    (fun n ->
      let inputs = List.map value_of n.Graph.inputs in
      let eval () =
        match (n.Graph.op, inputs) with
        | Graph.Input, [] -> Tensor input
        | Graph.Const_scalar v, [] -> Scalar v
        | Graph.Min_reduce, [ v ] ->
          charge Profile.Quantization (fun () ->
              Scalar (fst (Tensor.min_max (tensor_of v))))
        | Graph.Max_reduce, [ v ] ->
          charge Profile.Quantization (fun () ->
              Scalar (snd (Tensor.min_max (tensor_of v))))
        | Graph.Conv2d { filter; bias; spec }, [ v ] ->
          Tensor
            (Conv_float.gemm ?profile ?scratch ~input:(tensor_of v) ~filter
               ?bias ~spec ())
        | Graph.Ax_conv2d { filter; bias; spec; config },
          [ data; in_min; in_max; f_min; f_max ] ->
          let input_range =
            Range.make ~min:(scalar_of in_min) ~max:(scalar_of in_max)
          in
          let filter_range =
            Range.make ~min:(scalar_of f_min) ~max:(scalar_of f_max)
          in
          let conv ?profile ~config ~input ~input_range ~filter ~filter_range
              ?bias ~spec () =
            match strategy with
            | Cpu_gemm ->
              Axconv.conv ?profile ?scratch ~config ~input ~input_range
                ~filter ~filter_range ?bias ~spec ()
            | Cpu_direct ->
              Conv_direct.conv ?profile ~config ~input ~input_range ~filter
                ~filter_range ?bias ~spec ()
          in
          Tensor
            (conv ?profile ~config ~input:(tensor_of data) ~input_range
               ~filter ~filter_range ?bias ~spec ())
        | Graph.Depthwise_conv2d { filter; bias; spec }, [ v ] ->
          charge Profile.Other (fun () ->
              Tensor
                (Depthwise.float_conv ~input:(tensor_of v) ~filter ?bias
                   ~spec ()))
        | Graph.Ax_depthwise_conv2d { filter; bias; spec; config },
          [ data; in_min; in_max; f_min; f_max ] ->
          let input_range =
            Range.make ~min:(scalar_of in_min) ~max:(scalar_of in_max)
          in
          let filter_range =
            Range.make ~min:(scalar_of f_min) ~max:(scalar_of f_max)
          in
          Tensor
            (Depthwise.approx_conv ?profile ~config ~input:(tensor_of data)
               ~input_range ~filter ~filter_range ?bias ~spec ())
        | Graph.Relu, [ v ] ->
          charge Profile.Other (fun () -> Tensor (Layers.relu (tensor_of v)))
        | Graph.Max_pool { size; stride }, [ v ] ->
          charge Profile.Other (fun () ->
              Tensor (Layers.max_pool ~size ~stride (tensor_of v)))
        | Graph.Global_avg_pool, [ v ] ->
          charge Profile.Other (fun () ->
              Tensor (Layers.global_avg_pool (tensor_of v)))
        | Graph.Dense { weights; bias }, [ v ] ->
          charge Profile.Other (fun () ->
              Tensor (Layers.dense ~weights ~bias (tensor_of v)))
        | Graph.Batch_norm { scale; shift }, [ v ] ->
          charge Profile.Other (fun () ->
              Tensor (Layers.batch_norm ~scale ~shift (tensor_of v)))
        | Graph.Add, [ a; b ] ->
          charge Profile.Other (fun () ->
              Tensor (Tensor.add (tensor_of a) (tensor_of b)))
        | Graph.Softmax, [ v ] ->
          charge Profile.Other (fun () -> Tensor (Layers.softmax (tensor_of v)))
        | Graph.Shortcut_pad { stride; out_c }, [ v ] ->
          charge Profile.Other (fun () ->
              Tensor (Layers.shortcut_pad ~stride ~out_c (tensor_of v)))
        | ( ( Graph.Input | Graph.Const_scalar _ | Graph.Min_reduce
            | Graph.Max_reduce | Graph.Conv2d _ | Graph.Ax_conv2d _
            | Graph.Depthwise_conv2d _ | Graph.Ax_depthwise_conv2d _
            | Graph.Relu | Graph.Max_pool _ | Graph.Global_avg_pool
            | Graph.Dense _ | Graph.Batch_norm _ | Graph.Add | Graph.Softmax
            | Graph.Shortcut_pad _ ),
            _ ) ->
          invalid_arg
            (Printf.sprintf "Exec: arity mismatch at node %s" n.Graph.name)
      in
      let timed () =
        span
          (Graph.op_name n.Graph.op)
          [ ("node", n.Graph.name); ("node_id", string_of_int n.Graph.id) ]
          eval
      in
      let result =
        match profile with
        | None -> timed ()
        | Some p ->
          let start = Unix.gettimeofday () in
          let r = timed () in
          Profile.observe p "exec_node_seconds" (Unix.gettimeofday () -. start);
          r
      in
      (* The activation tap observes (and may rewrite) every
         tensor-valued node output before its consumers see it — the
         hook fault-injection campaigns use to corrupt inter-layer
         activation memory. *)
      let result =
        match (tap, result) with
        | Some f, Tensor t -> Tensor (f n t)
        | (Some _ | None), _ -> result
      in
      values.(n.Graph.id) <- Some result)
    (Graph.nodes g);
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Exec.run_all: unevaluated node")
    values

let run_value ?profile ?strategy ?scratch ?tap g ~input =
  (run_all ?profile ?strategy ?scratch ?tap g ~input).(Graph.output g)

let run ?profile ?strategy ?scratch ?tap g ~input =
  tensor_of (run_value ?profile ?strategy ?scratch ?tap g ~input)

(* Shape-only interpreter: the same per-op output-shape rules the
   executor realises (and Ax_analysis checks), minus the arithmetic —
   what lets [Emulator.run] answer an empty batch without inventing a
   dummy inference.  Scalar-valued nodes infer to [None]. *)
let output_shape g ~input =
  let shapes : Shape.t option array = Array.make (Graph.size g) None in
  let tensor_shape id =
    match shapes.(id) with
    | Some s -> s
    | None ->
      invalid_arg "Exec.output_shape: scalar where a tensor is required"
  in
  Array.iter
    (fun node ->
      let data () = tensor_shape (List.nth node.Graph.inputs 0) in
      let inferred =
        match node.Graph.op with
        | Graph.Input -> Some input
        | Graph.Const_scalar _ | Graph.Min_reduce | Graph.Max_reduce -> None
        | Graph.Conv2d { filter; spec; _ } | Graph.Ax_conv2d { filter; spec; _ }
          ->
          Some (Conv_spec.output_shape spec (data ()) filter)
        | Graph.Depthwise_conv2d { filter; spec; _ }
        | Graph.Ax_depthwise_conv2d { filter; spec; _ } ->
          Some (Depthwise.output_shape ~spec (data ()) filter)
        | Graph.Relu | Graph.Softmax | Graph.Batch_norm _ | Graph.Add ->
          Some (data ())
        | Graph.Max_pool { size; stride } ->
          let s = data () in
          Some
            (Shape.make ~n:Shape.(s.n)
               ~h:(((Shape.(s.h) - size) / stride) + 1)
               ~w:(((Shape.(s.w) - size) / stride) + 1)
               ~c:Shape.(s.c))
        | Graph.Global_avg_pool ->
          let s = data () in
          Some (Shape.make ~n:Shape.(s.n) ~h:1 ~w:1 ~c:Shape.(s.c))
        | Graph.Dense { weights; _ } ->
          let s = data () in
          Some
            (Shape.make ~n:Shape.(s.n) ~h:1 ~w:1
               ~c:weights.Ax_tensor.Matrix.cols)
        | Graph.Shortcut_pad { stride; out_c } ->
          let s = data () in
          Some
            (Shape.make ~n:Shape.(s.n)
               ~h:((Shape.(s.h) + stride - 1) / stride)
               ~w:((Shape.(s.w) + stride - 1) / stride)
               ~c:out_c)
      in
      shapes.(node.Graph.id) <- inferred)
    (Graph.nodes g);
  match shapes.(Graph.output g) with
  | Some s -> s
  | None -> invalid_arg "Exec.output_shape: graph output is scalar-valued"
