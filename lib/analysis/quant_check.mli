(** Quantization-soundness pass: interval analysis over the Eq. 4
    arithmetic of every approximate convolution in a graph.

    For each [Ax_conv2d] / [Ax_depthwise_conv2d] node the pass

    - discharges the LUT-index proof obligation: quantized operand
      codes, clamped into the signedness's 8-bit range, always stitch
      to an index inside [[0, 65535]];
    - scans the layer's 65 536-entry LUT once (cached per table) for
      its decoded product range and flags entries no exact 8x8
      multiplier of that signedness could produce;
    - computes the worst-case signed accumulator interval of the
      corrected sum [acc - beta2*Sp - beta1*Sf + N*beta1*beta2]
      (including raw partial sums before correction) and from it the
      {e headroom}: how many bits remain below the paper's 32-bit
      accumulator.  Negative headroom is an overflow finding; narrow
      saturating / wrapping accumulator models get their own
      severities, since clipping there is a modelling choice rather
      than a soundness bug. *)

(** Per-layer analysis result (also the [--headroom] report rows). *)
type layer = {
  node_id : int;
  name : string;
  op : string;
  signedness : Ax_arith.Signedness.t;
  taps : int;  (** Eq. 4's [N]: reduction length of one output *)
  lut_lo : int;  (** least decoded product in the layer's LUT *)
  lut_hi : int;
  acc_lo : int;  (** worst-case corrected-accumulator interval *)
  acc_hi : int;
  bits_needed : int;
      (** two's-complement width that provably holds the interval *)
  headroom_bits : int;  (** [reference_width - bits_needed] *)
}

val reference_width : int
(** The paper's accumulator width: 32. *)

val check : Ax_nn.Graph.t -> Diagnostic.t list * layer list
(** Findings plus one {!layer} row per approximate convolution, in
    graph order.  Graphs without approximate layers yield [([], [])]. *)

val check_lut :
  ?location:Diagnostic.location -> Ax_arith.Lut.t -> Diagnostic.t list
(** Just the table-level checks (product range vs the exact multiplier
    of the table's signedness), for LUTs outside any graph — registry
    entries, [--lut] files. *)

val pp_headroom : Format.formatter -> layer list -> unit
(** The per-layer headroom table recorded in EXPERIMENTS.md. *)

val layers_to_json : layer list -> Ax_obs.Json.t
