(** Certified evolutionary design-space exploration of 8x8 multipliers.

    The loop the emulator was built to close (ROADMAP item 3): seed a
    population from the structural generators, mutate netlist genomes
    ({!Genome}), sweep each mutant with {!Ax_netlist.Opt.strip_dead},
    tabulate its 2{^16}-entry LUT with the bit-parallel simulator,
    BDD-certify the netlist against that LUT
    ({!Ax_analysis.Netlist_check} — an uncertifiable candidate is
    rejected and never scored), then score the survivors on two axes:
    end-to-end top-1 accuracy through the existing emulator (candidates
    fanned out over {!Ax_pool.Pool}) and relative MAC energy from
    {!Ax_gpusim.Energy}, keeping a Pareto archive ({!Pareto}).

    {b Determinism contract.}  A run is a pure function of its
    {!config}: mutation randomness comes from a seeded {!Srng} stream
    on the coordinator, candidates are deduplicated and ordered there,
    and the pool fan-out uses [map_array] (index-ordered results), so
    {!front_json_string} and {!front_csv_string} are byte-identical
    across repeated runs, pool sizes and [TFAPPROX_DOMAINS] settings.
    [wall_seconds] is the one nondeterministic field and is deliberately
    excluded from both renderings. *)

type model = Resnet8 | Lenet

val model_name : model -> string
val model_of_string : string -> model
(** Raises [Failure] (listing the known names) on anything else —
    surfaced as a usage error by the CLI. *)

type config = {
  seed : int;
  generations : int;   (** mutation rounds after the seeded population *)
  population : int;    (** candidates per round *)
  budget : int;        (** max candidate evaluations; [<= 0] means
                           [population * (generations + 1)] *)
  images : int;        (** dataset size for the accuracy axis *)
  model : model;
  mutations : int;     (** mutation operations per child *)
  max_domains : int option;
      (** cap on pool domains used for candidate evaluation ([None] =
          whole pool); results are identical for every value *)
}

val default_config : config
(** seed 1, 4 generations of 8 on ResNet-8 over 32 images, 2 mutations
    per child, no explicit budget. *)

type verdict =
  | Scored of Pareto.point
  | Rejected of { name : string; reason : string }

type result = {
  config : config;
  front : Pareto.point list;     (** non-dominated, {!Pareto.front} order *)
  evaluated : int;               (** candidates run through the full
                                     certify-and-score pipeline *)
  rejected : int;
  cache_hits : int;              (** duplicate mutants skipped outright *)
  rejections : (string * string) list;  (** name, reason; oldest first *)
  wall_seconds : float;
}

val tabulate : Ax_netlist.Multipliers.t -> Ax_arith.Lut.t
(** Exhaustive bit-parallel tabulation of an (8x8, unsigned) candidate
    into the emulator's LUT format.  Raises [Invalid_argument] on other
    interface shapes. *)

val certify_candidate :
  Ax_netlist.Multipliers.t -> lut:Ax_arith.Lut.t -> (unit, string) Stdlib.result
(** The search's admission decision, exposed for tests and external
    candidates: structural lint plus BDD certification against [lut];
    [Error reason] carries the first error-severity rule (Info findings
    such as [net/unused-input] do not reject). *)

val run : ?pool:Ax_pool.Pool.t -> config -> result
(** Run the search on [pool] (default: the process-wide pool).  Raises
    [Invalid_argument] on a non-positive population or image count, a
    negative generation count, or an out-of-range [max_domains]. *)

val front_json_string : result -> string
(** The front plus run counters as one deterministic JSON document
    (fixed [%.6f] float rendering, key order fixed). *)

val front_csv_string : result -> string
(** The front as CSV with a header line, same formatting discipline. *)

val pp_front : Format.formatter -> result -> unit
(** Human-readable front table for the CLI. *)
