(** Checked drop-in for [Stdlib.Condition], paired with
    {!Ax_conc.Mutex}.  A [wait] in record mode is modelled as release +
    reacquire of the mutex, keeping the held stack truthful and giving
    wakeups a happens-before edge through the mutex clock. *)

type t

val create : name:string -> unit -> t
val name : t -> string
val wait : t -> Mutex.t -> unit
val signal : t -> unit
val broadcast : t -> unit
