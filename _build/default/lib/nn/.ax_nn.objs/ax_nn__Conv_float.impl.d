lib/nn/conv_float.ml: Array Ax_tensor Bigarray Conv_spec Filter Im2col Profile
