(* The retraining workflow the paper motivates (Sec. I: "determining a
   suitable approximate implementation ... requires ... additional
   parameter fine-tuning (i.e. re-training)"):

   1. train a small CNN in float32 on the synthetic dataset;
   2. swap its convolutions for AxConv2D with a coarse truncated
      multiplier — accuracy drops;
   3. fine-tune *through the emulated forward pass* (straight-through
      gradients) — the network adapts its weights to the approximate
      hardware and recovers accuracy.

   Run with: dune exec examples/finetune.exe  (about a minute) *)

module Graph = Ax_nn.Graph
module Conv_spec = Ax_nn.Conv_spec
module Trainer = Ax_train.Trainer
module Cifar = Ax_data.Cifar

let build_model ~seed =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let conv ~name ~seed ~in_c ~out_c src =
    let filter =
      Ax_models.Weights.conv_filter ~seed ~name ~kh:3 ~kw:3 ~in_c ~out_c
    in
    let c =
      Graph.add b ~name
        (Graph.Conv2d
           {
             filter;
             bias = Some (Array.make out_c 0.);
             spec = Conv_spec.make ~stride:2 ~padding:Conv_spec.Same ();
           })
        [ src ]
    in
    Graph.add b ~name:(name ^ "/relu") Graph.Relu [ c ]
  in
  let x = conv ~name:"c1" ~seed ~in_c:3 ~out_c:8 input in
  let x = conv ~name:"c2" ~seed:(seed + 4) ~in_c:8 ~out_c:16 x in
  let gap = Graph.add b ~name:"gap" Graph.Global_avg_pool [ x ] in
  let weights, bias =
    Ax_models.Weights.dense ~seed ~name:"fc" ~inputs:16 ~outputs:10
  in
  let fc = Graph.add b ~name:"fc" (Graph.Dense { weights; bias }) [ gap ] in
  let sm = Graph.add b ~name:"softmax" Graph.Softmax [ fc ] in
  Graph.finalize b ~output:sm

let () =
  let train_set = Cifar.normalize (Cifar.generate ~seed:26 ~n:80 ()) in
  let test_set = Cifar.normalize (Cifar.generate ~seed:99 ~n:40 ()) in
  let model = build_model ~seed:42 in

  (* 1. float pre-training *)
  Format.printf "1. float pre-training (accuracy %.0f%% before)@."
    (100. *. Trainer.evaluate model test_set);
  let pretrain =
    {
      Trainer.default_config with
      Trainer.epochs = 20;
      learning_rate = 0.05;
      batch_size = 12;
    }
  in
  ignore
    (Trainer.train
       ~log:(fun ~epoch ~loss ~accuracy ->
         if epoch mod 5 = 0 then
           Format.printf "   epoch %2d  loss %.3f  train acc %.0f%%@." epoch
             loss (100. *. accuracy))
       pretrain model train_set);
  let float_acc = Trainer.evaluate model test_set in
  Format.printf "   float test accuracy: %.0f%%@.@." (100. *. float_acc);

  (* 2. deploy on approximate hardware *)
  let multiplier = "mul8s_drum4" in
  let approx = Tfapprox.Emulator.approximate_model ~multiplier model in
  let drop_acc = Trainer.evaluate approx test_set in
  Format.printf "2. emulated with %s: %.0f%% (%+.0f points)@.@." multiplier
    (100. *. drop_acc)
    (100. *. (drop_acc -. float_acc));

  (* 3. hardware-aware fine-tuning: forward = emulated, backward =
     straight-through. *)
  Format.printf "3. fine-tuning through the emulated forward pass@.";
  let finetune =
    {
      Trainer.default_config with
      Trainer.epochs = 8;
      learning_rate = 0.02;
      batch_size = 12;
    }
  in
  ignore
    (Trainer.train
       ~log:(fun ~epoch ~loss ~accuracy ->
         Format.printf "   epoch %2d  loss %.3f  train acc %.0f%%@." epoch
           loss (100. *. accuracy))
       finetune approx train_set);
  let tuned_acc = Trainer.evaluate approx test_set in
  Format.printf
    "   emulated test accuracy after fine-tuning: %.0f%% (%+.0f points vs untuned)@."
    (100. *. tuned_acc)
    (100. *. (tuned_acc -. drop_acc));
  Format.printf
    "@.Note: the transform shares weight storage with the original graph@.";
  Format.printf
    "(like TF variables), so the float model above is now tuned too.@."
