type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: bad dims";
  { rows; cols; data = Array.make (rows * cols) 0. }

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let of_arrays rows =
  match Array.length rows with
  | 0 -> invalid_arg "Matrix.of_arrays: empty"
  | r ->
    let c = Array.length rows.(0) in
    let m = create ~rows:r ~cols:c in
    Array.iteri
      (fun i row ->
        if Array.length row <> c then
          invalid_arg "Matrix.of_arrays: ragged rows";
        Array.iteri (fun j v -> set m i j v) row)
      rows;
    m

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (get m i))

let block = 48

let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Matrix.matmul: %dx%d times %dx%d" a.rows a.cols b.rows
         b.cols);
  let out = create ~rows:a.rows ~cols:b.cols in
  let n = a.rows and k = a.cols and m = b.cols in
  let kk = ref 0 in
  while !kk < k do
    let k_hi = min k (!kk + block) in
    for i = 0 to n - 1 do
      let a_row = i * k in
      for p = !kk to k_hi - 1 do
        let av = a.data.(a_row + p) in
        if av <> 0. then begin
          let b_row = p * m in
          let o_row = i * m in
          for j = 0 to m - 1 do
            out.data.(o_row + j) <-
              out.data.(o_row + j) +. (av *. b.data.(b_row + j))
          done
        end
      done
    done;
    kk := k_hi
  done;
  out

let transpose m =
  let out = create ~rows:m.cols ~cols:m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set out j i (get m i j)
    done
  done;
  out

let approx_equal ?(tolerance = 1e-6) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let rec go i =
    i >= Array.length a.data
    || (abs_float (a.data.(i) -. b.data.(i)) <= tolerance && go (i + 1))
  in
  go 0
