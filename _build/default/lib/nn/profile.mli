(** Phase-attributed wall-clock accounting, matching the four categories
    of the paper's Fig. 2: initialization, quantization (including
    dequantization and min/max), LUT lookups, and everything else
    (Im2Cols, GEMM bookkeeping, pooling, ...). *)

type phase = Init | Quantization | Lut | Other

type t

val create : unit -> t
val reset : t -> unit

val time : t -> phase -> (unit -> 'a) -> 'a
(** Run a thunk and charge its wall-clock time to a phase.  Nested calls
    charge the inner phase and subtract from the outer one, so phases
    never double-count. *)

val add_seconds : t -> phase -> float -> unit
(** Charge time measured externally (used by the GPU timeline import). *)

val count_lut_lookups : t -> int -> unit
val count_macs : t -> int -> unit

val seconds : t -> phase -> float
val total_seconds : t -> float
val lut_lookups : t -> int
val macs : t -> int

type breakdown = {
  init_pct : float;
  quantization_pct : float;
  lut_pct : float;
  other_pct : float;
}

val breakdown : t -> breakdown
(** Percentages of the total (all zero when nothing was recorded). *)

val pp_breakdown : Format.formatter -> breakdown -> unit
