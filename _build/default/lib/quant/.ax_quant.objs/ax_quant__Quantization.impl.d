lib/quant/quantization.ml: Ax_arith Ax_tensor Bigarray Bytes Char Float Round
