(* The circuit-library production flow: generate gate-level approximate
   multipliers, verify them exhaustively against their behavioural
   models, characterise hardware cost, extract the 128 kB LUT the
   emulator consumes, and export synthesisable Verilog — i.e. how a
   library like EvoApprox8b is built and packaged for TFApprox.

   Run with: dune exec examples/netlist_export.exe *)

module Multipliers = Ax_netlist.Multipliers
module Power = Ax_netlist.Power
module Verilog = Ax_netlist.Verilog
module Lut = Ax_arith.Lut
module Metrics = Ax_arith.Error_metrics
module S = Ax_arith.Signedness

let characterize label (m : Multipliers.t) behavioural_model =
  let gate_fn = Multipliers.behavioural m in
  (* Exhaustive equivalence check netlist vs behavioural model. *)
  let mismatches = ref 0 in
  for a = 0 to 255 do
    for b = 0 to 255 do
      if gate_fn a b <> behavioural_model a b then incr mismatches
    done
  done;
  let report = Power.analyze m.Multipliers.circuit in
  let lut = Lut.make ~signedness:S.Unsigned gate_fn in
  let metrics = Metrics.compute_lut lut in
  Format.printf "%-16s %a@." label Power.pp_report report;
  Format.printf "%-16s %a@." "" Metrics.pp metrics;
  Format.printf "%-16s behavioural mismatches: %d / 65536@.@." ""
    !mismatches;
  lut

let () =
  Format.printf "Gate-level 8x8 multipliers (unit-gate cost model):@.@.";
  let exact = Multipliers.unsigned_array ~bits:8 in
  let _ = characterize "exact" exact (fun a b -> a * b) in
  let trunc = Multipliers.truncated ~bits:8 ~cut:8 in
  let _ =
    characterize "trunc(cut=8)" trunc
      (Ax_arith.Truncation.truncated ~bits:8 ~cut:8)
  in
  let bam = Multipliers.broken_array ~bits:8 ~hbl:2 ~vbl:6 in
  let lut =
    characterize "bam(h2,v6)" bam
      (Ax_arith.Truncation.broken_array ~bits:8 ~hbl:2 ~vbl:6)
  in

  (* Package the last one the way the emulator consumes it. *)
  let lut_path = Filename.temp_file "bam_h2_v6" ".axlut" in
  Lut.save lut_path lut;
  Format.printf "LUT written to %s (%d bytes payload, the paper's 128 kB)@."
    lut_path Lut.size_bytes;
  let reloaded = Lut.load lut_path in
  Format.printf "reload roundtrip ok: %b@.@." (Lut.equal lut reloaded);
  Sys.remove lut_path;

  (* Synthesisable Verilog for the EDA flow. *)
  let verilog = Verilog.to_string bam.Multipliers.circuit in
  let lines = String.split_on_char '\n' verilog in
  Format.printf "Verilog export (%d lines), first 12:@." (List.length lines);
  List.iteri
    (fun i line -> if i < 12 then Format.printf "  %s@." line)
    lines
