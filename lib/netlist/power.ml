type report = {
  area : float;
  delay : float;
  power : float;
  gates : int;
  pdp : float;
}

(* Static CMOS transistor counts. *)
let area_of_gate = function
  | Gate.Input _ | Gate.Const _ | Gate.Buf _ -> 0.
  | Gate.Not _ -> 2.
  | Gate.Nand2 _ | Gate.Nor2 _ -> 4.
  | Gate.And2 _ | Gate.Or2 _ -> 6.
  | Gate.Xor2 _ | Gate.Xnor2 _ -> 8.

(* Normalised logical-effort delays (FO4-ish relative units). *)
let delay_of_gate = function
  | Gate.Input _ | Gate.Const _ | Gate.Buf _ -> 0.
  | Gate.Not _ -> 1.
  | Gate.Nand2 _ | Gate.Nor2 _ -> 1.
  | Gate.And2 _ | Gate.Or2 _ -> 1.5
  | Gate.Xor2 _ | Gate.Xnor2 _ -> 2.

let signal_probabilities c =
  let p = Array.make (Circuit.node_count c) 0.5 in
  Circuit.iter_gates c (fun i g ->
      let prob j = p.(j) in
      p.(i) <-
        (match g with
        | Gate.Input _ -> 0.5
        | Gate.Const b -> if b then 1. else 0.
        | Gate.Buf a -> prob a
        | Gate.Not a -> 1. -. prob a
        | Gate.And2 (a, b) -> prob a *. prob b
        | Gate.Or2 (a, b) -> prob a +. prob b -. (prob a *. prob b)
        | Gate.Nand2 (a, b) -> 1. -. (prob a *. prob b)
        | Gate.Nor2 (a, b) -> 1. -. (prob a +. prob b -. (prob a *. prob b))
        | Gate.Xor2 (a, b) ->
          let pa = prob a and pb = prob b in
          (pa *. (1. -. pb)) +. (pb *. (1. -. pa))
        | Gate.Xnor2 (a, b) ->
          let pa = prob a and pb = prob b in
          1. -. ((pa *. (1. -. pb)) +. (pb *. (1. -. pa)))));
  p

let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add
      (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

(* Per-node one-counts over a sequence of bit-parallel sweeps.  Each
   sweep binds every primary input to a 64-lane word produced by
   [word_for ~sweep ~input_ordinal]; [lanes_of sweep] masks out unused
   lanes of a partial final sweep.  Shared by the exhaustive and the
   Monte-Carlo probability estimators. *)
let count_ones_by_simulation c ~sweeps ~word_for ~lanes_of =
  let n = Circuit.node_count c in
  let counts = Array.make n 0 in
  let values = Array.make n 0L in
  let total_lanes = ref 0 in
  for sweep = 0 to sweeps - 1 do
    let next_input = ref 0 in
    Circuit.iter_gates c (fun i g ->
        match g with
        | Gate.Input _ ->
          values.(i) <- word_for ~sweep ~input_ordinal:!next_input;
          incr next_input
        | g -> values.(i) <- Gate.eval_word g (fun j -> values.(j)));
    let lanes = lanes_of sweep in
    let mask =
      if lanes >= 64 then -1L
      else Int64.sub (Int64.shift_left 1L lanes) 1L
    in
    total_lanes := !total_lanes + Int.min lanes 64;
    for i = 0 to n - 1 do
      counts.(i) <- counts.(i) + popcount64 (Int64.logand values.(i) mask)
    done
  done;
  (counts, !total_lanes)

let exact_inputs_limit = 20

let exact_signal_probabilities c =
  let bits = Circuit.input_count c in
  if bits > exact_inputs_limit then
    invalid_arg
      (Printf.sprintf
         "Power.exact_signal_probabilities: %d inputs exceed the %d-input \
          exhaustive-sweep limit"
         bits exact_inputs_limit);
  let patterns = 1 lsl bits in
  let sweeps = (patterns + 63) / 64 in
  (* Lane k of sweep s carries input pattern s*64 + k (input bit [o] of
     the pattern is its o-th binary digit, as in [Sim.truth_table_2x]). *)
  let word_for ~sweep ~input_ordinal =
    let w = ref 0L in
    for lane = 0 to 63 do
      let p = (sweep * 64) + lane in
      if p < patterns && (p lsr input_ordinal) land 1 = 1 then
        w := Int64.logor !w (Int64.shift_left 1L lane)
    done;
    !w
  in
  let lanes_of sweep = Int.min 64 (patterns - (sweep * 64)) in
  let counts, total = count_ones_by_simulation c ~sweeps ~word_for ~lanes_of in
  Array.map (fun ones -> float_of_int ones /. float_of_int total) counts

let monte_carlo_signal_probabilities ~seed ~samples c =
  if samples <= 0 then
    invalid_arg "Power.monte_carlo_signal_probabilities: samples must be > 0";
  (* splitmix64: one independent 64-lane word per (sweep, input) cell,
     so every lane is an independent uniform test vector and the whole
     estimate is a pure function of [seed]. *)
  let state = ref (Int64.logxor (Int64.of_int seed) 0x9E3779B97F4A7C15L) in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let sweeps = (samples + 63) / 64 in
  let bits = Circuit.input_count c in
  let table = Array.init (sweeps * Int.max 1 bits) (fun _ -> next ()) in
  let word_for ~sweep ~input_ordinal = table.((sweep * bits) + input_ordinal) in
  let lanes_of _ = 64 in
  let counts, total = count_ones_by_simulation c ~sweeps ~word_for ~lanes_of in
  Array.map (fun ones -> float_of_int ones /. float_of_int total) counts

let analyze ?probabilities c =
  let probabilities =
    match probabilities with
    | Some p ->
      if Array.length p <> Circuit.node_count c then
        invalid_arg "Power.analyze: probabilities length <> node count";
      p
    | None ->
      (* Exact probabilities whenever exhaustive simulation is feasible
         (every 8x8 multiplier qualifies); the closed-form propagation
         is only the fallback for very wide circuits, where its
         reconvergent-fanout error has to be accepted. *)
      if Circuit.input_count c <= exact_inputs_limit then
        exact_signal_probabilities c
      else signal_probabilities c
  in
  let arrival = Array.make (Circuit.node_count c) 0. in
  let area = ref 0. and power = ref 0. and gates = ref 0 and delay = ref 0. in
  Circuit.iter_gates c (fun i g ->
      let ready =
        List.fold_left (fun acc j -> Float.max acc arrival.(j)) 0.
          (Gate.fanin g)
      in
      arrival.(i) <- ready +. delay_of_gate g;
      if arrival.(i) > !delay then delay := arrival.(i);
      area := !area +. area_of_gate g;
      (match g with
      | Gate.Input _ | Gate.Const _ | Gate.Buf _ -> ()
      | Gate.Not _ | Gate.And2 _ | Gate.Or2 _ | Gate.Xor2 _ | Gate.Nand2 _
      | Gate.Nor2 _ | Gate.Xnor2 _ ->
        incr gates;
        let p = probabilities.(i) in
        let activity = 2. *. p *. (1. -. p) in
        power := !power +. (activity *. area_of_gate g)));
  let d = !delay in
  { area = !area; delay = d; power = !power; gates = !gates;
    pdp = !power *. d }

let pp_report ppf r =
  Format.fprintf ppf
    "area=%.0f delay=%.1f power=%.2f gates=%d pdp=%.2f" r.area r.delay
    r.power r.gates r.pdp
