lib/netlist/bdd.ml: Array Circuit Gate Hashtbl List
