lib/nn/layers.ml: Array Ax_tensor Bigarray Printf
