(* Serve-side concurrency check units for [check --suite concurrency]:
   record-mode discipline soaks of the real admission queue and model
   store over real systhreads, plus deterministic explorations driving
   the REAL [Admission] module through the cooperative scheduler (its
   locks and condition variable are Ax_conc shims, so under explore
   hooks every operation is a scheduling point) and a model of the
   store's corrupt-artefact repair path.  Same contract as
   [Ax_analysis.Conc_check]: real-code units must be clean, seeded
   defects must be flagged (else [conc/blind-detector]). *)

module D = Ax_analysis.Diagnostic
module Conc_check = Ax_analysis.Conc_check
module Conc = Ax_conc.Conc
module Cmutex = Ax_conc.Mutex
module Explore = Ax_conc.Explore
module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor

let with_record f =
  let saved = Conc.mode () in
  Conc.reset ();
  Conc.set_mode Conc.Record;
  Fun.protect
    ~finally:(fun () ->
      Conc.set_mode saved;
      Conc.reset ())
    (fun () ->
      f ();
      Conc.collect ())

let blind ~subject detail =
  [ D.make ~rule:"conc/blind-detector" ~location:(D.Artefact subject) detail ]

(* [seq] rides in the job's [images] field so FIFO order per model is
   observable from the formed batches. *)
let job ~model ~seq deliver =
  {
    Admission.model;
    input = Tensor.create (Shape.make ~n:1 ~h:1 ~w:1 ~c:1);
    images = seq;
    enqueued = 0.;
    deadline = None;
    deliver;
  }

(* ------------------------------------------------------------------ *)
(* Admission: record-mode soak over real systhreads                    *)
(* ------------------------------------------------------------------ *)

let admission_discipline () =
  Conc_check.to_diagnostics
    (with_record (fun () ->
         let adm =
           Admission.create ~now:(fun () -> 0.) ~capacity:8 ~max_batch:4 ()
         in
         let submitter m () =
           for i = 1 to 8 do
             ignore (Admission.submit adm (job ~model:m ~seq:i ignore))
           done
         in
         let rec batcher () =
           match Admission.wait_ready adm with
           | `Closed -> ()
           | `Ready ->
             ignore (Admission.form_batch adm);
             batcher ()
         in
         let t1 = Thread.create (submitter "a") () in
         let t2 = Thread.create (submitter "b") () in
         let t3 = Thread.create batcher () in
         Thread.join t1;
         Thread.join t2;
         Admission.close adm;
         Thread.join t3;
         Admission.drain adm;
         ignore (Admission.stats adm)))

(* ------------------------------------------------------------------ *)
(* Admission: deterministic exploration of the real module             *)
(* ------------------------------------------------------------------ *)

(* Two submitters (different models) race a batcher through the real
   queue under every interleaving of its lock/condvar operations.
   Checked after each schedule: per-model FIFO across the formed
   batch, queue depth bounded by capacity, and job conservation
   (every accepted job is either batched or still queued).  The
   per-schedule check closure is handed out through a ref because the
   scenario state is rebuilt by the setup thunk on every run. *)
let admission_explore () =
  let after_hook = ref (fun () -> ()) in
  let outcome =
    Explore.explore ~max_schedules:3000
      ~after:(fun () -> !after_hook ())
      (fun () ->
        let adm =
          Admission.create ~now:(fun () -> 0.) ~capacity:2 ~max_batch:2 ()
        in
        let batched = ref [] in
        let accepted = ref 0 in
        let submitter m n () =
          for i = 1 to n do
            match Admission.submit adm (job ~model:m ~seq:i ignore) with
            | Ok () -> incr accepted
            | Error _ -> ()
          done
        in
        let batcher () =
          match Admission.wait_ready adm with
          | `Closed -> ()
          | `Ready -> (
            match Admission.form_batch adm with
            | `Empty -> ()
            | `Batch (model, jobs) ->
              batched :=
                !batched
                @ List.map (fun (j : Admission.job) -> (model, j.images)) jobs)
        in
        (after_hook :=
           fun () ->
             let stats = Admission.stats adm in
             Explore.check
               (stats.Admission.max_depth <= 2)
               (Printf.sprintf "queue depth %d exceeded capacity 2"
                  stats.Admission.max_depth);
             let seen = Hashtbl.create 4 in
             List.iter
               (fun (m, seq) ->
                 let last =
                   match Hashtbl.find_opt seen m with Some s -> s | None -> 0
                 in
                 Explore.check (seq > last)
                   (Printf.sprintf
                      "model %s batched out of FIFO order (seq %d after %d)" m
                      seq last);
                 Hashtbl.replace seen m seq)
               !batched;
             let remaining = Admission.depth adm in
             Explore.check
               (List.length !batched + remaining = !accepted)
               (Printf.sprintf "jobs lost: accepted %d, batched %d, queued %d"
                  !accepted (List.length !batched) remaining));
        [ submitter "a" 2; submitter "b" 1; batcher ])
  in
  Conc_check.diagnostics_of_outcome ~subject:"serve.admission" outcome

(* ------------------------------------------------------------------ *)
(* Store: record-mode soak of the hit-count cache                      *)
(* ------------------------------------------------------------------ *)

(* A missing-file spec degrades to a cheap Unavailable entry at load,
   so the unit exercises only the store's concurrency surface: [find]
   bumping the hit cache from several threads.  The exact-count match
   doubles as a lost-update check on the cache itself. *)
let store_discipline () =
  Conc_check.to_diagnostics
    (with_record (fun () ->
         let store =
           Store.load [ Store.parse_spec "m=conc_check_missing.axmdl" ]
         in
         let finder () =
           for _ = 1 to 16 do
             ignore (Store.find store "m");
             ignore (Store.find store "absent")
           done
         in
         let t1 = Thread.create finder () in
         let t2 = Thread.create finder () in
         Thread.join t1;
         Thread.join t2;
         match Store.hit_counts store with
         | [ ("m", 32) ] -> ()
         | other ->
           failwith
             (Printf.sprintf "conc_scenarios: hit cache lost updates (%s)"
                (String.concat ","
                   (List.map
                      (fun (n, c) -> Printf.sprintf "%s=%d" n c)
                      other)))))

(* ------------------------------------------------------------------ *)
(* Store repair path: exploration model                                *)
(* ------------------------------------------------------------------ *)

(* The corrupt-artefact repair path as a model: two loaders hit the
   same corrupt entry; repair must happen exactly once.  The guarded
   variant (check-and-repair under one lock) must explore clean. *)
let repair_model_guarded () =
  Conc_check.diagnostics_of_outcome ~subject:"serve.store.repair"
    (Explore.explore (fun () ->
         let m = Cmutex.create ~name:"store.cache-model" () in
         let status = Explore.var ~track:false ~name:"store.status" `Corrupt in
         let repairs = ref 0 in
         let loader () =
           Cmutex.with_lock m (fun () ->
               if Explore.get status = `Corrupt then begin
                 incr repairs;
                 Explore.check (!repairs <= 1) "artefact repaired twice";
                 Explore.set status `Ready
               end)
         in
         [ loader; loader ]))

(* Seeded defect: the same path with the check-then-repair OUTSIDE the
   lock — a schedule with two repairs must be found, else the explorer
   has gone blind. *)
let selftest_repair_race () =
  let outcome =
    Explore.explore (fun () ->
        let status = Explore.var ~track:false ~name:"store.status" `Corrupt in
        let repairs = ref 0 in
        let loader () =
          if Explore.get status = `Corrupt then begin
            incr repairs;
            Explore.check (!repairs <= 1) "artefact repaired twice";
            Explore.set status `Ready
          end
        in
        [ loader; loader ])
  in
  match outcome with
  | Explore.Violation _ -> []
  | Explore.No_violation _ ->
    blind ~subject:"serve.store.repair"
      "the unguarded check-then-repair model passed the single-repair \
       invariant under every explored schedule"

let suite () =
  [
    ("conc.serve.admission-discipline", admission_discipline ());
    ("conc.serve.admission-explore", admission_explore ());
    ("conc.serve.store-discipline", store_discipline ());
    ("conc.serve.repair-guarded", repair_model_guarded ());
    ("conc.serve.selftest.repair-race", selftest_repair_race ());
  ]
