type t = Signed | Unsigned

let equal a b =
  match (a, b) with
  | Signed, Signed | Unsigned, Unsigned -> true
  | Signed, Unsigned | Unsigned, Signed -> false

let to_string = function Signed -> "signed" | Unsigned -> "unsigned"
let pp ppf s = Format.pp_print_string ppf (to_string s)
let min_value = function Signed -> -128 | Unsigned -> 0
let max_value = function Signed -> 127 | Unsigned -> 255
let in_range s v = v >= min_value s && v <= max_value s

let code_of_value s v =
  if not (in_range s v) then
    invalid_arg
      (Printf.sprintf "Signedness.code_of_value: %d out of %s range" v
         (to_string s));
  v land 0xff

let value_of_code s c =
  if c < 0 || c > 255 then
    invalid_arg "Signedness.value_of_code: code out of range";
  match s with
  | Unsigned -> c
  | Signed -> if c >= 128 then c - 256 else c

let clamp s v = max (min_value s) (min (max_value s) v)

let max_abs_product = function
  | Unsigned -> 255 * 255
  | Signed -> 128 * 128
