(* GC work attributed to a phase, with the same partition semantics as
   seconds: inner phases charge, outer phases are refunded, so no
   allocated word is counted twice. *)
type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_zero =
  {
    minor_words = 0.;
    promoted_words = 0.;
    major_words = 0.;
    minor_collections = 0;
    major_collections = 0;
  }

let gc_add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
  }

let gc_neg d =
  {
    minor_words = -.d.minor_words;
    promoted_words = -.d.promoted_words;
    major_words = -.d.major_words;
    minor_collections = -d.minor_collections;
    major_collections = -d.major_collections;
  }

let gc_between ~(before : Gc.stat) ~(after : Gc.stat) =
  {
    minor_words = after.Gc.minor_words -. before.Gc.minor_words;
    promoted_words = after.Gc.promoted_words -. before.Gc.promoted_words;
    major_words = after.Gc.major_words -. before.Gc.major_words;
    minor_collections = after.Gc.minor_collections - before.Gc.minor_collections;
    major_collections = after.Gc.major_collections - before.Gc.major_collections;
  }

type cell = { mutable secs : float; mutable gc : gc_delta }

type t = {
  table : (string, cell) Hashtbl.t;
  mutable active : string option;  (* innermost running phase *)
}

let create () = { table = Hashtbl.create 8; active = None }

let reset t =
  Hashtbl.iter
    (fun _ cell ->
      cell.secs <- 0.;
      cell.gc <- gc_zero)
    t.table;
  t.active <- None

let cell t name =
  match Hashtbl.find_opt t.table name with
  | Some c -> c
  | None ->
    let c = { secs = 0.; gc = gc_zero } in
    Hashtbl.add t.table name c;
    c

let add_seconds t name s =
  let c = cell t name in
  c.secs <- c.secs +. s

let add_gc t name d =
  let c = cell t name in
  c.gc <- gc_add c.gc d

let time t name f =
  let outer = t.active in
  t.active <- Some name;
  let start = Unix.gettimeofday () in
  let gc_start = Gc.quick_stat () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = Unix.gettimeofday () -. start in
      let delta = gc_between ~before:gc_start ~after:(Gc.quick_stat ()) in
      add_seconds t name elapsed;
      add_gc t name delta;
      (match outer with
      | Some p ->
        add_seconds t p (-.elapsed);
        add_gc t p (gc_neg delta)
      | None -> ());
      t.active <- outer)
    f

let seconds t name =
  match Hashtbl.find_opt t.table name with Some c -> c.secs | None -> 0.

let gc_delta t name =
  match Hashtbl.find_opt t.table name with Some c -> c.gc | None -> gc_zero

let total t = Hashtbl.fold (fun _ c acc -> acc +. c.secs) t.table 0.

let gc_total t = Hashtbl.fold (fun _ c acc -> gc_add acc c.gc) t.table gc_zero

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort compare

let to_json t =
  Json.Obj (List.map (fun name -> (name, Json.Float (seconds t name))) (names t))

let gc_delta_to_json d =
  Json.Obj
    [
      ("minor_words", Json.Float d.minor_words);
      ("promoted_words", Json.Float d.promoted_words);
      ("major_words", Json.Float d.major_words);
      ("minor_collections", Json.Int d.minor_collections);
      ("major_collections", Json.Int d.major_collections);
    ]

let gc_to_json t =
  Json.Obj
    (List.map (fun name -> (name, gc_delta_to_json (gc_delta t name))) (names t))

let publish_gc t metrics =
  List.iter
    (fun name ->
      let d = gc_delta t name in
      let key suffix =
        "phase_" ^ String.lowercase_ascii name ^ "_" ^ suffix
      in
      Metrics.set_gauge metrics (key "minor_words") d.minor_words;
      Metrics.set_gauge metrics (key "major_words") d.major_words;
      Metrics.set_gauge metrics (key "minor_collections")
        (float_of_int d.minor_collections);
      Metrics.set_gauge metrics (key "major_collections")
        (float_of_int d.major_collections))
    (names t)
