lib/gpusim/energy.mli: Ax_netlist Lazy
