(** Structural multiplier generators.

    Each generator returns a complete {!Circuit.t} with two operand
    inputs (all bits of [a] first, LSB-first, then all bits of [b]) and a
    product output bus, ready for simulation, characterisation, LUT
    extraction and Verilog export.

    The approximate variants implement the classic design-space knobs of
    the approximate-multiplier literature: truncation (drop low product
    columns), the broken-array multiplier (omit carry-save cells below a
    break line), and arbitrary partial-product pruning. *)

type t = {
  circuit : Circuit.t;
  width_a : int;
  width_b : int;
  product_bits : int;
  signed : bool;
}

val unsigned_array : bits:int -> t
(** Exact unsigned array multiplier: AND partial products compressed with
    carry-save adders; [2*bits] product bits. *)

val truncated : bits:int -> cut:int -> t
(** Truncated unsigned multiplier: partial products of weight below
    [2^cut] are never generated; the corresponding output bits are
    constant zero.  [cut = 0] is the exact multiplier. *)

val broken_array : bits:int -> hbl:int -> vbl:int -> t
(** Broken-array multiplier (Mahdiani et al.): omits partial product
    [a_i*b_j] when the cell lies below the horizontal break line
    ([j >= bits - hbl] rows pruned from the bottom... here expressed as
    [j < hbl] rows pruned from the top of the array being the low-order
    rows) or right of the vertical break line ([i + j < vbl]).
    Concretely a cell is kept iff [i + j >= vbl && j >= hbl].
    [hbl = 0, vbl = 0] is exact. *)

val pruned : bits:int -> keep:(int -> int -> bool) -> name:string -> t
(** Generic pruned array multiplier: partial product [a_i*b_j] is
    generated only when [keep i j] holds. *)

val baugh_wooley_signed : bits:int -> t
(** Exact two's-complement multiplier (modified Baugh-Wooley form),
    [2*bits] product bits. *)

val behavioural : t -> int -> int -> int
(** [behavioural m a b] simulates the netlist exhaustively on first use
    and returns the product for unsigned operand encodings [a], [b]
    (two's-complement operands are passed via their unsigned bit
    pattern).  The result is the raw output bus value. *)
