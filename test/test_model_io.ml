(* Model serialization: structural and bit-exact functional roundtrips
   for plain, transformed (LUT-embedding) and trained graphs. *)

module Graph = Ax_nn.Graph
module Model_io = Ax_nn.Model_io
module Exec = Ax_nn.Exec
module Tensor = Ax_tensor.Tensor
module Resnet = Ax_models.Resnet
module Mobilenet = Ax_models.Mobilenet
module Cifar = Ax_data.Cifar
module Emulator = Tfapprox.Emulator

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let roundtrip g = Model_io.of_bytes (Model_io.to_bytes g)

let bitwise_same_outputs a b input =
  Tensor.max_abs_diff (Exec.run a ~input) (Exec.run b ~input) = 0.

let test_roundtrip_resnet_structure () =
  let g = Resnet.build ~depth:14 () in
  let g' = roundtrip g in
  check_int "node count" (Graph.size g) (Graph.size g');
  check_int "output id" (Graph.output g) (Graph.output g');
  Array.iteri
    (fun i n ->
      let n' = (Graph.nodes g').(i) in
      check_bool "names match" true (n.Graph.name = n'.Graph.name);
      check_bool "inputs match" true (n.Graph.inputs = n'.Graph.inputs);
      check_bool "op kind matches" true
        (Graph.op_name n.Graph.op = Graph.op_name n'.Graph.op))
    (Graph.nodes g)

let test_roundtrip_resnet_bit_exact () =
  let g = Resnet.build ~depth:8 () in
  let g' = roundtrip g in
  let input = (Cifar.generate ~n:3 ()).Cifar.images in
  check_bool "outputs bit-identical" true (bitwise_same_outputs g g' input)

let test_roundtrip_transformed_with_lut () =
  let g = Resnet.build ~depth:8 () in
  let approx =
    Emulator.approximate_model ~multiplier:"mul8s_mitchell" ~chunk_size:7 g
  in
  let approx' = roundtrip approx in
  let input = (Cifar.generate ~n:2 ()).Cifar.images in
  check_bool "emulated outputs bit-identical" true
    (bitwise_same_outputs approx approx' input);
  (* The embedded LUT really is the multiplier's table. *)
  (match (Option.get (Graph.find_by_name approx' "conv0")).Graph.op with
  | Graph.Ax_conv2d { config; _ } ->
    check_bool "lut roundtrips" true
      (Ax_arith.Lut.equal config.Ax_nn.Axconv.lut
         (Emulator.lut_of_multiplier "mul8s_mitchell"));
    check_int "chunk size preserved" 7 config.Ax_nn.Axconv.chunk_size
  | _ -> Alcotest.fail "conv0 should be AxConv2D")

let test_roundtrip_mobilenet_depthwise () =
  let g = Mobilenet.build ~blocks:2 () in
  let approx = Emulator.approximate_model ~multiplier:"mul8s_exact" g in
  let approx' = roundtrip approx in
  let input = (Cifar.generate ~n:2 ()).Cifar.images in
  check_bool "depthwise model roundtrips" true
    (bitwise_same_outputs approx approx' input)

let test_roundtrip_per_channel_config () =
  let g = Resnet.build ~depth:8 () in
  let config =
    Ax_nn.Axconv.make_config ~granularity:Ax_nn.Axconv.Per_channel
      ~round_mode:Ax_quant.Round.Toward_zero
      (Emulator.lut_of_multiplier "mul8u_trunc8")
  in
  let approx = Ax_nn.Transform.approximate ~config g in
  let approx' = roundtrip approx in
  match (Option.get (Graph.find_by_name approx' "conv0")).Graph.op with
  | Graph.Ax_conv2d { config; _ } ->
    check_bool "granularity preserved" true
      (config.Ax_nn.Axconv.granularity = Ax_nn.Axconv.Per_channel);
    check_bool "round mode preserved" true
      (config.Ax_nn.Axconv.round_mode = Ax_quant.Round.Toward_zero)
  | _ -> Alcotest.fail "conv0 should be AxConv2D"

let test_file_roundtrip () =
  let g = Resnet.build ~depth:8 () in
  let path = Filename.temp_file "axmdl" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Model_io.save path g;
      let g' = Model_io.load path in
      let input = (Cifar.generate ~n:2 ()).Cifar.images in
      check_bool "file roundtrip bit-identical" true
        (bitwise_same_outputs g g' input))

let test_rejects_garbage () =
  (match Model_io.of_bytes_result (Bytes.of_string "NOTAMODELATALL") with
  | Error (Ax_arith.Load_error.Bad_magic _) -> ()
  | Error e ->
    Alcotest.failf "expected Bad_magic, got %s" (Ax_arith.Load_error.to_string e)
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match Model_io.of_bytes (Bytes.of_string "NOTAMODELATALL") with
  | exception Ax_arith.Load_error.Error (Ax_arith.Load_error.Bad_magic _) -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "garbage accepted by raising API");
  (* Truncated but correctly-headed input. *)
  let good = Model_io.to_bytes (Resnet.build ~depth:8 ()) in
  let cut = Bytes.sub good 0 (Bytes.length good / 3) in
  (match Model_io.of_bytes_result cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input accepted");
  (* One flipped payload bit: caught by the trailing CRC. *)
  let flipped = Bytes.copy good in
  let pos = Bytes.length good / 2 in
  Bytes.set flipped pos
    (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x01));
  match Model_io.of_bytes_result flipped with
  | Error (Ax_arith.Load_error.Bad_checksum _) -> ()
  | Error e ->
    Alcotest.failf "expected Bad_checksum, got %s"
      (Ax_arith.Load_error.to_string e)
  | Ok _ -> Alcotest.fail "bit-flipped model accepted"

let test_deterministic_encoding () =
  let g = Resnet.build ~depth:8 () in
  check_bool "stable bytes" true
    (Bytes.equal (Model_io.to_bytes g) (Model_io.to_bytes g))

let () =
  Alcotest.run "ax_model_io"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "resnet structure" `Quick
            test_roundtrip_resnet_structure;
          Alcotest.test_case "resnet bit-exact" `Quick
            test_roundtrip_resnet_bit_exact;
          Alcotest.test_case "transformed with LUT" `Quick
            test_roundtrip_transformed_with_lut;
          Alcotest.test_case "mobilenet depthwise" `Quick
            test_roundtrip_mobilenet_depthwise;
          Alcotest.test_case "per-channel config" `Quick
            test_roundtrip_per_channel_config;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
          Alcotest.test_case "deterministic encoding" `Quick
            test_deterministic_encoding;
        ] );
    ]
