(** CGP-style genome over a combinational multiplier netlist.

    A genome is the mutable-representation twin of an append-only
    {!Ax_netlist.Circuit.t}: a flat gene array in topological order
    (every gate gene's fan-ins point strictly below it, so acyclicity
    holds by construction) plus the declared output interface.  Mutation
    edits genes in place; {!to_circuit} replays the genes through the
    circuit smart constructors, which re-apply structural hashing and
    constant folding, and {!to_multiplier} additionally sweeps dead
    logic with {!Ax_netlist.Opt.strip_dead} — the exact round-trip every
    search candidate takes before being tabulated and certified. *)

type op = Buf | Not | And2 | Or2 | Xor2 | Nand2 | Nor2 | Xnor2

type gene =
  | Input of string  (** primary input; never mutated *)
  | Const of bool
  | Gate of { op : op; a : int; b : int }
      (** two-input gene; unary ops ([Buf], [Not]) read only [a] *)

type t = {
  name : string;
  width_a : int;
  width_b : int;
  product_bits : int;
  signed : bool;
  genes : gene array;
  outputs : (string * int) array;  (** label, gene index *)
}

val of_multiplier : Ax_netlist.Multipliers.t -> t
(** Extract the genome of an existing multiplier netlist (gene [i] is
    circuit node [i]). *)

val to_circuit : ?name:string -> t -> Ax_netlist.Circuit.t
(** Replay the genes through the smart constructors.  Simplifications
    the constructors perform (folding a gate whose fan-ins became
    constant, interning a duplicated gate) are intended: they model the
    light cleanup any synthesis flow would apply to a mutant. *)

val to_multiplier : ?name:string -> t -> Ax_netlist.Multipliers.t
(** [to_circuit] followed by {!Ax_netlist.Opt.strip_dead}, wrapped with
    the genome's declared interface widths. *)

val mutate : rng:Srng.t -> ?operations:int -> t -> t
(** A fresh genome with [operations] (default 1) random edits, each one
    of: gate substitution (new operator, same fan-ins), fan-in rewire
    (one operand re-pointed to a uniformly chosen earlier gene) or
    constant folding (the gene replaced by a constant driver).  Inputs
    and the output interface are never touched, and rewires only point
    downward, so every mutant still satisfies {!valid}.  The input
    genome is not modified. *)

val valid : t -> bool
(** Structural invariants the search (and the qcheck property tests)
    rely on: gate fan-ins strictly below their gene, output indices in
    range with pairwise-distinct labels, input genes matching
    [width_a + width_b] in count. *)

val gate_gene_count : t -> int
(** Number of [Gate] genes (mutation targets). *)
