(** The long-lived inference daemon: accept loop, per-connection
    protocol handling, and the batch scheduler.

    {b Request lifecycle.}  A connection thread reads frames
    ({!Protocol.read_frame}) and decodes requests; an [Infer] becomes a
    job in the bounded {!Admission} queue (or an immediate typed
    [Overloaded] / [Unknown_model] / [Model_unavailable] / [Bad_request]
    refusal).  One scheduler thread pops same-model batches, coalesces
    the request tensors along the batch dimension, runs them through
    {!Tfapprox.Emulator.predictions} with {e per-image sharding} on the
    process-wide {!Ax_pool.Pool}, splits the class ids back per request
    and delivers each response on the request's own connection.
    Per-image sharding is what makes batching sound: every image is
    quantized against its own Min/Max range, so a request's predictions
    are bit-identical to a one-shot [Emulator.run ~domains:1] of that
    request alone, no matter which requests it was batched with.

    {b Failure containment.}  Malformed, truncated or oversized frames
    are typed per-connection errors (the connection survives a CRC
    mismatch, closes on a framing desync — see {!Protocol.recoverable});
    an executor exception answers the affected requests with [Internal]
    and the daemon keeps serving; a dead client mid-response is logged
    and dropped (SIGPIPE is ignored).  A silent or stalled peer is
    closed after [idle_timeout] instead of pinning its thread forever,
    and connections past [max_connections] are refused with a typed
    [Overloaded] frame before a thread is spawned, so slow-loris churn
    cannot grow the thread count without bound.  Nothing a client sends
    can bring the process down.

    {b Connection close protocol.}  A connection's fd is closed only
    once its reader thread has exited {e and} every admission job still
    holding a [deliver] closure for it has run; writes, the
    [peer_gone] check and the close are serialized under the
    connection's write lock.  This makes fd-number recycling safe: a
    late delivery for a vanished client is dropped, never written into
    another client's stream. *)

type address =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port; port 0 binds an ephemeral port *)

val address_to_string : address -> string

val parse_address : string -> address
(** [unix:PATH], [tcp:HOST:PORT], or a bare [PATH].  Raises [Failure]
    on bad syntax — a usage error. *)

type config = {
  address : address;
  store : Store.t;
  backend : Tfapprox.Emulator.backend;  (** default [Cpu_gemm] *)
  domains : int;
      (** pool width for per-image batch sharding, >= 1; results are
          bit-identical for every value *)
  queue_capacity : int;
  max_batch : int;
  linger : float;
      (** seconds the scheduler waits after the queue becomes non-empty
          before forming a batch, letting concurrent requests coalesce *)
  retry_after_ms : int;  (** the [Overloaded] hint *)
  max_connections : int;
      (** concurrent connection cap (>= 1); further accepts are
          answered with a typed [Overloaded] frame and closed without
          spawning a thread *)
  idle_timeout : float;
      (** seconds a connection may sit without delivering a complete
          frame ([SO_RCVTIMEO]) before it is closed as stalled;
          [0.] disables the timeout *)
  metrics : Ax_obs.Metrics.t;
  trace : Ax_obs.Trace.t option;
      (** scheduler-side spans: [serve.batch] per executed batch with
          one [serve.request] child per delivered response (queue and
          service seconds as attributes) *)
}

val default_config : store:Store.t -> address:address -> unit -> config
(** [Cpu_gemm], [domains = 1], capacity 64, max batch 8, 2 ms linger,
    50 ms retry hint, 256 connections, 300 s idle timeout, a fresh
    metrics registry, no tracer. *)

type t

val start : config -> t
(** Bind, listen and spawn the accept + scheduler threads; returns once
    the socket is live.  Raises [Unix.Unix_error] when the address
    cannot be bound (a runtime failure).  An existing socket file at a
    [Unix_sock] path is replaced. *)

val bound_address : t -> address
(** The actual address — resolves an ephemeral TCP port 0. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, refuse new work
    ([Shutting_down]), cancel queued jobs, join every thread, close the
    socket (and unlink a Unix socket file).  Idempotent. *)

val request_stop : t -> unit
(** Flag the daemon for shutdown without blocking — safe to call from a
    signal handler (the CLI's SIGINT/SIGTERM hooks) or a connection
    thread.  {!wait} notices and performs the actual {!stop}. *)

val wait : t -> unit
(** Block until {!stop} runs or a stop is requested (a client
    [Shutdown] frame, {!request_stop}), then finish the shutdown —
    the daemon main loop of [tfapprox serve]. *)

val admission : t -> Admission.t
(** The live queue (stats / depth introspection for benches). *)
