test/test_lenet_mnist.ml: Alcotest Array Ax_data Ax_models Ax_nn Ax_tensor Ax_train Float Fun List Printf Tfapprox
